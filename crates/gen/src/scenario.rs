//! Scenario descriptors: multi-axis condition sweeps beyond the paper's
//! homogeneous single-bus setup.
//!
//! The Section 7 experiments fix one platform shape (mildly heterogeneous
//! speeds, contention-free bus) and sweep only SER/HPD. A [`Scenario`]
//! generalizes one experimental *cell* along four more axes:
//!
//! * **bus model** ([`BusProfile`]) — contention-free vs TDMA rounds at a
//!   chosen slot length;
//! * **platform heterogeneity** ([`Heterogeneity`]) — identical nodes vs
//!   spread speed/cost profiles;
//! * **application count** — how many synthetic applications the cell runs;
//! * **deadline tightness** ([`Utilization`]) — how much slack the
//!   deadline assignment leaves over the schedule lower bound.
//!
//! A [`ScenarioMatrix`] enumerates the cross product into concrete cells.
//! Generation is fully seeded: the same `(seed, index)` produces the same
//! task graph, deadline and reliability goal in *every* cell, so results
//! are comparable along each axis (the bus and heterogeneity axes re-price
//! an identical workload rather than sampling a new one).

use ftes_model::{BusSpec, System, TimeUs};
use serde::{Deserialize, Serialize};

use crate::dag::DagConfig;
use crate::experiment::{generate_instance_core, ExperimentConfig};
use crate::platform::PlatformConfig;

/// The bus-model axis of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BusProfile {
    /// Contention-free bus (the paper's setup).
    #[default]
    Ideal,
    /// TTP-style TDMA rounds with the given slot length.
    Tdma {
        /// Length of each node's slot.
        slot: TimeUs,
    },
}

impl BusProfile {
    /// The [`BusSpec`] this profile denotes.
    pub fn spec(self) -> BusSpec {
        match self {
            BusProfile::Ideal => BusSpec::ideal(),
            BusProfile::Tdma { slot } => BusSpec::tdma(slot),
        }
    }

    /// Stable label used in cell names and golden files.
    pub fn label(self) -> String {
        match self {
            BusProfile::Ideal => "ideal".to_string(),
            BusProfile::Tdma { slot } => format!("tdma{}us", slot.as_us()),
        }
    }
}

/// The platform-heterogeneity axis: how far node speeds and costs spread.
///
/// Concrete [`PlatformConfig`] parameters derive from the variant; the
/// first node type is always the 1.0-speed reference, so `Homogeneous`
/// collapses every type to identical speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Heterogeneity {
    /// All node types run at the reference speed (uniform platform).
    Homogeneous,
    /// The paper-calibrated default: speed factors up to 1.6×.
    #[default]
    Mild,
    /// Strongly heterogeneous: speed factors up to 3×, costs 1–6 units.
    Wide,
}

impl Heterogeneity {
    /// Upper bound of the node speed-factor spread.
    pub fn max_speed_factor(self) -> f64 {
        match self {
            Heterogeneity::Homogeneous => 1.0,
            Heterogeneity::Mild => 1.6,
            Heterogeneity::Wide => 3.0,
        }
    }

    /// Initial (h = 1) cost range in units.
    pub fn base_cost(self) -> (u64, u64) {
        match self {
            Heterogeneity::Homogeneous | Heterogeneity::Mild => (1, 4),
            Heterogeneity::Wide => (1, 6),
        }
    }

    /// Stable label used in cell names and golden files.
    pub fn label(self) -> &'static str {
        match self {
            Heterogeneity::Homogeneous => "hom",
            Heterogeneity::Mild => "mild",
            Heterogeneity::Wide => "wide",
        }
    }
}

/// The deadline-tightness axis: the range the per-application deadline
/// factor (deadline = factor × lower bound) is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Utilization {
    /// The paper-calibrated default range (1.25–3.0×).
    #[default]
    Relaxed,
    /// Tight deadlines (1.05–1.6×): little slack for recovery or TDMA
    /// waiting.
    Tight,
}

impl Utilization {
    /// The deadline-factor range this profile denotes.
    pub fn deadline_factor(self) -> (f64, f64) {
        match self {
            Utilization::Relaxed => (1.25, 3.0),
            Utilization::Tight => (1.05, 1.6),
        }
    }

    /// Stable label used in cell names and golden files.
    pub fn label(self) -> &'static str {
        match self {
            Utilization::Relaxed => "relaxed",
            Utilization::Tight => "tight",
        }
    }
}

/// One fully-specified experimental cell: a point of the scenario matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The bus model the cell prices communication with.
    pub bus: BusProfile,
    /// The platform heterogeneity profile.
    pub platform: Heterogeneity,
    /// Deadline tightness. This axis owns the deadline-factor range:
    /// [`generate`](Scenario::generate) supersedes `base.deadline_factor`
    /// with [`Utilization::deadline_factor`].
    pub utilization: Utilization,
    /// Number of synthetic applications the cell runs.
    pub apps: usize,
    /// SER/HPD condition, node-type count, γ range and master seed.
    /// `base.deadline_factor` is ignored — the `utilization` axis supplies
    /// it, so one cell never mixes two sources of deadline tightness.
    pub base: ExperimentConfig,
}

impl Scenario {
    /// A scenario of the paper's default condition with the given axes.
    pub fn new(
        bus: BusProfile,
        platform: Heterogeneity,
        utilization: Utilization,
        apps: usize,
    ) -> Self {
        Scenario {
            bus,
            platform,
            utilization,
            apps,
            base: ExperimentConfig::default(),
        }
    }

    /// Stable cell label, unique within a matrix: all four axes joined.
    pub fn label(&self) -> String {
        format!(
            "{}-{}-{}-{}apps",
            self.bus.label(),
            self.platform.label(),
            self.utilization.label(),
            self.apps
        )
    }

    /// The platform generator configuration this scenario induces.
    pub fn platform_config(&self) -> PlatformConfig {
        PlatformConfig {
            node_types: self.base.node_types,
            ser_h1: self.base.ser_h1,
            max_speed_factor: self.platform.max_speed_factor(),
            base_cost: self.platform.base_cost(),
            ..PlatformConfig::default()
        }
    }

    /// Generates the `index`-th problem instance of this cell.
    ///
    /// Applications alternate between 20 and 40 processes like
    /// [`generate_instance`](crate::generate_instance); the same `(seed,
    /// index)` yields the same task graph, deadline and reliability goal
    /// across all bus profiles and heterogeneity levels. The deadline
    /// factor comes from the [`utilization`](Scenario::utilization) axis,
    /// overriding whatever `base.deadline_factor` holds.
    pub fn generate(&self, index: u64) -> System {
        let dag_cfg = DagConfig {
            processes: if index % 2 == 0 { 20 } else { 40 },
            ..DagConfig::default()
        };
        let config = ExperimentConfig {
            deadline_factor: self.utilization.deadline_factor(),
            ..self.base
        };
        generate_instance_core(
            &config,
            &dag_cfg,
            &self.platform_config(),
            self.bus.spec(),
            index,
        )
    }
}

/// A declarative (bus × heterogeneity × utilization × app-count) matrix;
/// [`cells`](ScenarioMatrix::cells) expands the cross product in a fixed,
/// documented order (bus outermost, app count innermost).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMatrix {
    /// Bus-model axis.
    pub buses: Vec<BusProfile>,
    /// Platform-heterogeneity axis.
    pub platforms: Vec<Heterogeneity>,
    /// Deadline-tightness axis.
    pub utilizations: Vec<Utilization>,
    /// Application-count axis (cell sizes).
    pub app_counts: Vec<usize>,
    /// Condition shared by every cell (SER, HPD, node types, seed).
    pub base: ExperimentConfig,
}

impl ScenarioMatrix {
    /// The full PR 3 sweep: 3 buses × 3 heterogeneity profiles × 2
    /// tightness levels × 2 cell sizes = 36 cells. TDMA slot lengths
    /// bracket the synthetic message size (≈ 0.5 ms): one slot that fits a
    /// typical message and one 4× coarser.
    pub fn full() -> Self {
        ScenarioMatrix {
            buses: vec![
                BusProfile::Ideal,
                BusProfile::Tdma {
                    slot: TimeUs::from_us(500),
                },
                BusProfile::Tdma {
                    slot: TimeUs::from_ms(2),
                },
            ],
            platforms: vec![
                Heterogeneity::Homogeneous,
                Heterogeneity::Mild,
                Heterogeneity::Wide,
            ],
            utilizations: vec![Utilization::Relaxed, Utilization::Tight],
            app_counts: vec![4, 8],
            base: ExperimentConfig::default(),
        }
    }

    /// A CI-sized smoke matrix: one TDMA and one heterogeneous axis value,
    /// 2 applications per cell (2 × 2 × 1 × 1 = 4 cells).
    pub fn smoke() -> Self {
        ScenarioMatrix {
            buses: vec![
                BusProfile::Ideal,
                BusProfile::Tdma {
                    slot: TimeUs::from_ms(1),
                },
            ],
            platforms: vec![Heterogeneity::Mild, Heterogeneity::Wide],
            utilizations: vec![Utilization::Relaxed],
            app_counts: vec![2],
            base: ExperimentConfig::default(),
        }
    }

    /// Number of cells the matrix expands to.
    pub fn cell_count(&self) -> usize {
        self.buses.len() * self.platforms.len() * self.utilizations.len() * self.app_counts.len()
    }

    /// Expands the cross product into concrete scenarios, bus outermost,
    /// then platform, then utilization, then app count.
    pub fn cells(&self) -> Vec<Scenario> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for &bus in &self.buses {
            for &platform in &self.platforms {
                for &utilization in &self.utilizations {
                    for &apps in &self.app_counts {
                        cells.push(Scenario {
                            bus,
                            platform,
                            utilization,
                            apps,
                            base: self.base,
                        });
                    }
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_instance;
    use ftes_model::{HLevel, NodeTypeId, ProcessId};

    fn default_scenario(bus: BusProfile, platform: Heterogeneity) -> Scenario {
        Scenario::new(bus, platform, Utilization::Relaxed, 2)
    }

    #[test]
    fn default_cell_reproduces_generate_instance() {
        // The (Ideal, Mild, Relaxed) cell is the paper's setup: its
        // instances must be bit-identical to `generate_instance`.
        let s = default_scenario(BusProfile::Ideal, Heterogeneity::Mild);
        let cfg = ExperimentConfig::default();
        for index in 0..3 {
            assert_eq!(s.generate(index), generate_instance(&cfg, index));
        }
    }

    #[test]
    fn bus_axis_changes_only_the_bus() {
        let ideal = default_scenario(BusProfile::Ideal, Heterogeneity::Wide);
        let tdma = default_scenario(
            BusProfile::Tdma {
                slot: TimeUs::from_ms(1),
            },
            Heterogeneity::Wide,
        );
        let a = ideal.generate(1);
        let b = tdma.generate(1);
        assert_eq!(b.bus(), BusSpec::tdma(TimeUs::from_ms(1)));
        assert_eq!(a.application(), b.application());
        assert_eq!(a.platform(), b.platform());
        assert_eq!(a.timing(), b.timing());
        assert_eq!(a.goal(), b.goal());
    }

    #[test]
    fn homogeneous_platforms_have_uniform_wcets() {
        let s = default_scenario(BusProfile::Ideal, Heterogeneity::Homogeneous);
        let sys = s.generate(0);
        let h1 = HLevel::MIN;
        for p in sys.application().process_ids() {
            let reference = sys.timing().wcet(p, NodeTypeId::new(0), h1).unwrap();
            for j in 1..sys.platform().node_type_count() {
                assert_eq!(
                    sys.timing().wcet(p, NodeTypeId::new(j as u32), h1).unwrap(),
                    reference
                );
            }
        }
    }

    #[test]
    fn wide_platforms_spread_wcets_further_than_mild() {
        // Same graph, same base WCETs: the widest per-process WCET spread
        // under `Wide` must be at least the `Mild` spread, and some process
        // must exceed the mild 1.6× cap.
        let mild = default_scenario(BusProfile::Ideal, Heterogeneity::Mild).generate(0);
        let wide = default_scenario(BusProfile::Ideal, Heterogeneity::Wide).generate(0);
        let h1 = HLevel::MIN;
        let spread = |sys: &ftes_model::System, p: ProcessId| {
            let mut lo = TimeUs::MAX;
            let mut hi = TimeUs::ZERO;
            for j in 0..sys.platform().node_type_count() {
                let w = sys.timing().wcet(p, NodeTypeId::new(j as u32), h1).unwrap();
                lo = lo.min(w);
                hi = hi.max(w);
            }
            (lo, hi)
        };
        let mut wide_exceeds_mild_cap = false;
        for p in mild.application().process_ids() {
            let (lo_m, hi_m) = spread(&mild, p);
            let (lo_w, hi_w) = spread(&wide, p);
            assert!(hi_m <= lo_m.scale(1.6001), "mild spread too wide");
            if hi_w > lo_w.scale(1.6001) {
                wide_exceeds_mild_cap = true;
            }
        }
        assert!(wide_exceeds_mild_cap, "wide profile never exceeded 1.6x");
    }

    #[test]
    fn axes_leave_graph_deadline_and_goal_invariant() {
        // Deadline comparability across the bus and heterogeneity axes.
        let cells = ScenarioMatrix::full().cells();
        let reference = cells[0].generate(2);
        for cell in &cells {
            let sys = Scenario {
                utilization: cells[0].utilization,
                ..cell.clone()
            }
            .generate(2);
            assert_eq!(
                sys.application().min_deadline(),
                reference.application().min_deadline(),
                "cell {}",
                cell.label()
            );
            assert_eq!(sys.goal(), reference.goal());
            assert_eq!(
                sys.application().message_count(),
                reference.application().message_count()
            );
        }
    }

    #[test]
    fn tight_utilization_shrinks_deadlines() {
        let relaxed = Scenario::new(
            BusProfile::Ideal,
            Heterogeneity::Mild,
            Utilization::Relaxed,
            2,
        );
        let tight = Scenario::new(
            BusProfile::Ideal,
            Heterogeneity::Mild,
            Utilization::Tight,
            2,
        );
        for index in 0..4 {
            assert!(
                tight.generate(index).application().min_deadline()
                    <= relaxed.generate(index).application().min_deadline()
            );
        }
    }

    #[test]
    fn matrix_expansion_covers_the_cross_product_with_unique_labels() {
        let matrix = ScenarioMatrix::full();
        let cells = matrix.cells();
        assert_eq!(cells.len(), matrix.cell_count());
        assert_eq!(cells.len(), 36);
        let mut labels: Vec<String> = cells.iter().map(Scenario::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), cells.len(), "duplicate cell labels");
    }

    #[test]
    fn smoke_matrix_is_small_but_covers_tdma_and_heterogeneous_cells() {
        let matrix = ScenarioMatrix::smoke();
        let cells = matrix.cells();
        assert_eq!(cells.len(), 4);
        assert!(cells
            .iter()
            .any(|c| matches!(c.bus, BusProfile::Tdma { .. })));
        assert!(cells.iter().any(|c| c.platform == Heterogeneity::Wide));
        assert!(cells.iter().all(|c| c.apps <= 2));
    }

    #[test]
    fn generation_is_deterministic() {
        let s = default_scenario(
            BusProfile::Tdma {
                slot: TimeUs::from_us(500),
            },
            Heterogeneity::Wide,
        );
        assert_eq!(s.generate(3), s.generate(3));
    }
}
