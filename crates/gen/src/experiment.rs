//! The Section 7 synthetic experimental setup.
//!
//! The paper: 150 synthetic applications with 20 and 40 processes; WCETs of
//! 1–20 ms on the fastest unhardened node; μ of 1–10 % of the WCET; five
//! hardening levels; SER per cycle at minimum hardening of 10⁻¹⁰ / 10⁻¹¹ /
//! 10⁻¹²; hardening performance degradation (HPD) from 5 % to 100 %
//! growing linearly with the level; initial node costs 1–6 units growing
//! linearly with the level; reliability goals ρ between 1 − 7.5·10⁻⁶ and
//! 1 − 2.5·10⁻⁵ per hour; deadlines assigned **independently** of SER and
//! HPD.

use ftes_faultsim::{build_timing_db, hpd_profile, ProbSource};
use ftes_model::{Application, BusSpec, ReliabilityGoal, System, TimeUs};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::dag::{generate_dag, DagConfig};
use crate::platform::{generate_platform, PlatformConfig};

/// Configuration of one experimental *condition* (a point of Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Average SER per cycle at minimum hardening (10⁻¹⁰…10⁻¹²).
    pub ser_h1: f64,
    /// Hardening performance degradation at the maximum level (0.05…1.0).
    pub hpd: f64,
    /// Node types available (the paper does not publish `|N|`; 4 gives a
    /// design space of 15 architectures).
    pub node_types: usize,
    /// Deadline tightness: the deadline is `factor × lower_bound` with the
    /// factor drawn uniformly from this range, per application, once —
    /// **independent of SER and HPD** as the paper requires.
    pub deadline_factor: (f64, f64),
    /// Reliability goal γ range per hour (paper: 7.5·10⁻⁶ … 2.5·10⁻⁵).
    pub gamma: (f64, f64),
    /// Master seed of the experiment.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            ser_h1: 1e-11,
            hpd: 0.05,
            node_types: 4,
            deadline_factor: (1.25, 3.0),
            gamma: (7.5e-6, 2.5e-5),
            seed: 0xF7E5,
        }
    }
}

/// Generates the `index`-th synthetic problem instance of a condition.
///
/// Applications alternate between 20 and 40 processes (even/odd index).
/// Everything except the failure probabilities and the hardening WCET
/// inflation is derived from seeds independent of `ser_h1`/`hpd`, so the
/// *same index* yields the *same graph, platform skeleton, deadline and
/// reliability goal* across conditions — exactly the paper's setup.
pub fn generate_instance(config: &ExperimentConfig, index: u64) -> System {
    let dag_cfg = DagConfig {
        processes: if index % 2 == 0 { 20 } else { 40 },
        ..DagConfig::default()
    };
    let platform_cfg = PlatformConfig {
        node_types: config.node_types,
        ser_h1: config.ser_h1,
        ..PlatformConfig::default()
    };
    generate_instance_core(config, &dag_cfg, &platform_cfg, BusSpec::ideal(), index)
}

/// The parameterized instance generator behind [`generate_instance`] and
/// the scenario layer ([`crate::Scenario::generate`]): same RNG streams,
/// same deadline/goal assignment, but with an explicit DAG configuration,
/// platform configuration and bus specification.
///
/// The deadline lower bound is computed from the *base* WCETs (fastest
/// node, no degradation) and ignores communication, so the same `(seed,
/// index)` yields the same graph, deadline and reliability goal across
/// every bus model and platform heterogeneity profile — scenario cells
/// stay comparable along those axes, exactly like the paper's SER/HPD
/// independence requirement.
pub(crate) fn generate_instance_core(
    config: &ExperimentConfig,
    dag_cfg: &DagConfig,
    platform_cfg: &PlatformConfig,
    bus: BusSpec,
    index: u64,
) -> System {
    // Independent, per-purpose RNG streams so that SER/HPD never shift the
    // sampling of structure, deadline or goal.
    let mut dag_rng = stream(config.seed, index, 1);
    let mut platform_rng = stream(config.seed, index, 2);
    let mut assign_rng = stream(config.seed, index, 3);

    let dag = generate_dag(dag_cfg, &mut dag_rng);
    let gp = generate_platform(platform_cfg, &mut platform_rng);

    // Deadline from a SER/HPD-independent lower bound.
    let factor = assign_rng.gen_range(config.deadline_factor.0..=config.deadline_factor.1);
    let gamma = assign_rng.gen_range(config.gamma.0..=config.gamma.1);
    let lb = schedule_lower_bound(&dag.application, &dag.base_wcet, platform_cfg.node_types);
    let deadline = lb.scale(factor);

    let application =
        reassign_deadline(&dag.application, deadline).expect("deadline reassignment is valid");

    let base_rows: Vec<Vec<TimeUs>> = dag.base_wcet.iter().map(|&w| gp.wcet_row(w)).collect();
    let timing = build_timing_db(
        &base_rows,
        &gp.platform,
        &hpd_profile(config.hpd, platform_cfg.levels),
        &gp.ser,
        ProbSource::Analytic,
    );

    System::new(
        application,
        gp.platform,
        timing,
        ReliabilityGoal::per_hour(gamma).expect("gamma range is valid"),
        bus,
    )
    .expect("generated system is consistent")
}

/// A simple schedule lower bound from base WCETs: the larger of the
/// critical-path length and the average per-node load.
pub fn schedule_lower_bound(app: &Application, base_wcet: &[TimeUs], node_count: usize) -> TimeUs {
    let mut lp = vec![TimeUs::ZERO; app.process_count()];
    for &p in app.topological_order().iter().rev() {
        let tail = app
            .successors(p)
            .map(|s| lp[s.index()])
            .max()
            .unwrap_or(TimeUs::ZERO);
        lp[p.index()] = base_wcet[p.index()] + tail;
    }
    let cp = lp.iter().copied().max().unwrap_or(TimeUs::ZERO);
    let total: TimeUs = base_wcet.iter().copied().sum();
    let balanced = TimeUs::from_us(total.as_us() / node_count.max(1) as i64);
    cp.max(balanced)
}

/// Rebuilds an application with a new (single-graph) deadline and period.
fn reassign_deadline(
    app: &Application,
    deadline: TimeUs,
) -> Result<Application, ftes_model::ModelError> {
    let mut b = ftes_model::ApplicationBuilder::new(app.name());
    b.set_period(deadline);
    let mut graph_map = Vec::new();
    for g in app.graph_ids() {
        graph_map.push(b.add_graph(app.graph(g).name(), deadline));
    }
    for p in app.process_ids() {
        let proc = app.process(p);
        b.add_process_named(graph_map[proc.graph().index()], proc.name(), proc.mu());
    }
    for m in app.message_ids() {
        let msg = app.message(m);
        b.add_message_named(msg.src(), msg.dst(), msg.name(), msg.tx_time())?;
    }
    b.build()
}

fn stream(seed: u64, index: u64, purpose: u64) -> ChaCha8Rng {
    // SplitMix-style mixing keeps the streams decorrelated.
    let mut z = seed
        .wrapping_add(index.wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add(purpose.wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    ChaCha8Rng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_model::ProcessId;

    #[test]
    fn instances_alternate_process_counts() {
        let cfg = ExperimentConfig::default();
        assert_eq!(generate_instance(&cfg, 0).application().process_count(), 20);
        assert_eq!(generate_instance(&cfg, 1).application().process_count(), 40);
        assert_eq!(generate_instance(&cfg, 2).application().process_count(), 20);
    }

    #[test]
    fn deadline_is_independent_of_ser_and_hpd() {
        let base = ExperimentConfig::default();
        let high_ser = ExperimentConfig {
            ser_h1: 1e-10,
            hpd: 1.0,
            ..base
        };
        for i in 0..5 {
            let a = generate_instance(&base, i);
            let b = generate_instance(&high_ser, i);
            assert_eq!(
                a.application().min_deadline(),
                b.application().min_deadline()
            );
            assert_eq!(a.application().period(), b.application().period());
            assert_eq!(a.goal(), b.goal());
            // Structure identical too.
            assert_eq!(
                a.application().message_count(),
                b.application().message_count()
            );
        }
    }

    #[test]
    fn failure_probabilities_scale_with_ser() {
        let low = generate_instance(
            &ExperimentConfig {
                ser_h1: 1e-12,
                ..ExperimentConfig::default()
            },
            0,
        );
        let high = generate_instance(
            &ExperimentConfig {
                ser_h1: 1e-10,
                ..ExperimentConfig::default()
            },
            0,
        );
        let p = ProcessId::new(0);
        let j = ftes_model::NodeTypeId::new(0);
        let h = ftes_model::HLevel::MIN;
        let pl = low.timing().pfail(p, j, h).unwrap().value();
        let ph = high.timing().pfail(p, j, h).unwrap().value();
        assert!(ph > pl * 50.0, "{ph} vs {pl}");
    }

    #[test]
    fn hpd_inflates_only_wcets() {
        let gentle = generate_instance(&ExperimentConfig::default(), 1);
        let harsh = generate_instance(
            &ExperimentConfig {
                hpd: 1.0,
                ..ExperimentConfig::default()
            },
            1,
        );
        let p = ProcessId::new(0);
        let j = ftes_model::NodeTypeId::new(0);
        let h5 = ftes_model::HLevel::new(5).unwrap();
        let h1 = ftes_model::HLevel::MIN;
        // Same at h1 (both profiles start at 1 %)...
        assert_eq!(
            gentle.timing().wcet(p, j, h1).unwrap(),
            harsh.timing().wcet(p, j, h1).unwrap()
        );
        // ...but much slower at h5 under HPD = 100 %.
        assert!(harsh.timing().wcet(p, j, h5).unwrap() > gentle.timing().wcet(p, j, h5).unwrap());
    }

    #[test]
    fn deadline_exceeds_the_lower_bound() {
        let cfg = ExperimentConfig::default();
        for i in 0..4 {
            let sys = generate_instance(&cfg, i);
            let n = sys.application().process_count();
            // Rough check: the deadline is comfortably above the largest
            // single WCET and below the total serial work × factor.
            let d = sys.application().min_deadline();
            assert!(
                d > TimeUs::from_ms(20),
                "deadline {d} too tight ({n} procs)"
            );
        }
    }

    #[test]
    fn reliability_goal_is_in_the_paper_range() {
        let cfg = ExperimentConfig::default();
        for i in 0..8 {
            let g = generate_instance(&cfg, i).goal().gamma();
            assert!((7.5e-6..=2.5e-5).contains(&g), "{g}");
        }
    }
}
