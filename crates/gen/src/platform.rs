//! Random platform generation for the Section 7 experiments.
//!
//! The paper's setup: nodes with **five hardening levels**, initial
//! processor costs between 1 and 6 cost units, **linear** cost growth with
//! the hardening level, and an average SER per cycle at minimum hardening
//! of 10⁻¹⁰ / 10⁻¹¹ / 10⁻¹² depending on the fabrication technology.

use ftes_model::{Cost, NodeType, Platform, TimeUs};
use rand::Rng;
use serde::{Deserialize, Serialize};

use ftes_faultsim::SerModel;

/// Parameters of the random platform generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Number of node types in the library (the paper's `|N|`).
    pub node_types: usize,
    /// Hardening levels per node type (paper: 5).
    pub levels: u8,
    /// Initial (h = 1) cost range in units (paper: 1–6; the default here is
    /// narrowed to 1–4 to calibrate the MAX strategy's affordability against
    /// the paper's ArC ∈ {15, 20, 25} columns — see EXPERIMENTS.md).
    pub base_cost: (u64, u64),
    /// Node speed factors: the fastest node is 1.0, the slowest up to this
    /// value (WCETs scale with the factor).
    pub max_speed_factor: f64,
    /// Average SER per cycle at minimum hardening (paper: 1e-10…1e-12).
    pub ser_h1: f64,
    /// SER reduction per hardening level (paper tables: 100×).
    pub ser_reduction: f64,
    /// Clock frequency tying WCETs to cycle counts.
    pub clock_hz: f64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            node_types: 4,
            levels: 5,
            base_cost: (1, 4),
            max_speed_factor: 1.6,
            ser_h1: 1e-11,
            ser_reduction: 100.0,
            clock_hz: 500e6,
        }
    }
}

/// A generated platform with its per-node-type speed factors and SER
/// models.
#[derive(Debug, Clone)]
pub struct GeneratedPlatform {
    /// The node-type library.
    pub platform: Platform,
    /// Speed factor per node type (1.0 = fastest).
    pub speed_factors: Vec<f64>,
    /// SER model per node type.
    pub ser: Vec<SerModel>,
}

impl GeneratedPlatform {
    /// Base WCET of a process on each node type given its WCET on the
    /// fastest node: `base × speed_factor_j`, as a full per-type row.
    pub fn wcet_row(&self, fastest_node_wcet: TimeUs) -> Vec<TimeUs> {
        self.speed_factors
            .iter()
            .map(|&f| fastest_node_wcet.scale(f))
            .collect()
    }
}

/// Generates a platform per the paper's Section 7 parameters: linear cost
/// growth `C_j^h = base_j · h`, speed factors spread between 1.0 and
/// `max_speed_factor` (the first node type is always the reference 1.0).
pub fn generate_platform<R: Rng>(config: &PlatformConfig, rng: &mut R) -> GeneratedPlatform {
    assert!(config.node_types >= 1);
    assert!(config.levels >= 1);
    let mut node_types = Vec::with_capacity(config.node_types);
    let mut speed_factors = Vec::with_capacity(config.node_types);
    let mut ser = Vec::with_capacity(config.node_types);
    for i in 0..config.node_types {
        let speed = if i == 0 {
            1.0
        } else {
            rng.gen_range(1.0..=config.max_speed_factor)
        };
        let base = rng.gen_range(config.base_cost.0..=config.base_cost.1);
        let costs: Vec<Cost> = (1..=u64::from(config.levels))
            .map(|h| Cost::new(base * h))
            .collect();
        node_types.push(
            NodeType::new(format!("N{}", i + 1), costs, speed)
                .expect("levels >= 1 ensures non-empty costs"),
        );
        speed_factors.push(speed);
        ser.push(SerModel::new(
            config.ser_h1,
            config.ser_reduction,
            config.clock_hz,
        ));
    }
    GeneratedPlatform {
        platform: Platform::new(node_types).expect("node types are valid"),
        speed_factors,
        ser,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn costs_grow_linearly_with_level() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generate_platform(&PlatformConfig::default(), &mut rng);
        for id in g.platform.node_type_ids() {
            let nt = g.platform.node_type(id);
            let base = nt.cost(ftes_model::HLevel::MIN).unwrap().units();
            assert!((1..=4).contains(&base));
            for h in 1..=nt.h_count() {
                let c = nt.cost(ftes_model::HLevel::new(h).unwrap()).unwrap();
                assert_eq!(c.units(), base * u64::from(h));
            }
        }
    }

    #[test]
    fn first_node_is_the_reference_speed() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generate_platform(&PlatformConfig::default(), &mut rng);
        assert_eq!(g.speed_factors[0], 1.0);
        for &f in &g.speed_factors {
            assert!((1.0..=1.6).contains(&f));
        }
    }

    #[test]
    fn wcet_row_scales_with_speed() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generate_platform(&PlatformConfig::default(), &mut rng);
        let row = g.wcet_row(TimeUs::from_ms(10));
        assert_eq!(row[0], TimeUs::from_ms(10));
        for (w, f) in row.iter().zip(&g.speed_factors) {
            assert_eq!(*w, TimeUs::from_ms(10).scale(*f));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_platform(
            &PlatformConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(9),
        );
        let b = generate_platform(
            &PlatformConfig::default(),
            &mut ChaCha8Rng::seed_from_u64(9),
        );
        assert_eq!(a.platform, b.platform);
        assert_eq!(a.speed_factors, b.speed_factors);
    }

    #[test]
    fn five_levels_by_default() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generate_platform(&PlatformConfig::default(), &mut rng);
        for id in g.platform.node_type_ids() {
            assert_eq!(g.platform.node_type(id).h_count(), 5);
        }
    }
}
