//! The communication bus model.
//!
//! The paper assumes a fault-tolerant time-triggered communication protocol
//! (TTP [10]): processes mapped on different nodes exchange messages over a
//! shared bus with known worst-case transmission times. Two models are
//! provided:
//!
//! * [`BusModel::Ideal`] — contention-free: a message occupies the bus for
//!   its transmission time starting the moment it is sent. This matches the
//!   paper's worked examples, where message delays are included in the given
//!   worst-case transmission times.
//! * [`BusModel::Tdma`] — a TTP-style TDMA round: each node owns one slot
//!   per round; a message waits for the next slot of its sender's node and
//!   must fit into a whole number of slots.

use serde::{Deserialize, Serialize};

use crate::ids::NodeId;
use crate::time::TimeUs;

/// The bus arbitration model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BusModel {
    /// Contention-free bus: transmission starts immediately.
    #[default]
    Ideal,
    /// TDMA rounds with one slot per node, TTP style.
    Tdma {
        /// Length of each node's slot.
        slot: TimeUs,
    },
}

/// The bus specification attached to a [`System`](crate::System).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BusSpec {
    /// The arbitration model.
    pub model: BusModel,
}

impl BusSpec {
    /// A contention-free bus.
    pub fn ideal() -> Self {
        BusSpec {
            model: BusModel::Ideal,
        }
    }

    /// A TDMA bus with the given slot length.
    pub fn tdma(slot: TimeUs) -> Self {
        BusSpec {
            model: BusModel::Tdma { slot },
        }
    }

    /// Earliest time a message from `sender` that becomes ready at `ready`
    /// finishes transmission, given the number of architecture nodes
    /// (TDMA rounds cycle through all of them in slot order).
    ///
    /// For the ideal bus this is `ready + tx_time`. For TDMA the message
    /// waits for the start of the sender's next slot and then occupies as
    /// many consecutive rounds as needed (one slot per round), i.e. a
    /// message with `tx_time` ≤ slot finishes within the first slot.
    ///
    /// # Panics
    ///
    /// Panics for a TDMA bus with a non-positive slot length.
    pub fn arrival_time(
        &self,
        sender: NodeId,
        n_nodes: usize,
        ready: TimeUs,
        tx_time: TimeUs,
    ) -> TimeUs {
        match self.model {
            BusModel::Ideal => ready + tx_time,
            BusModel::Tdma { slot } => {
                assert!(slot > TimeUs::ZERO, "TDMA slot length must be positive");
                if tx_time.is_zero() {
                    return ready;
                }
                let round = slot.times(n_nodes as i64);
                let offset = slot.times(sender.index() as i64);
                // First round index whose sender slot starts at or after `ready`.
                let rel = (ready - offset).as_us();
                let round_us = round.as_us();
                let k = if rel <= 0 {
                    0
                } else {
                    (rel + round_us - 1) / round_us
                };
                let mut start = offset + TimeUs::from_us(k * round_us);
                // Whole slots needed to ship tx_time.
                let slots_needed = (tx_time.as_us() + slot.as_us() - 1) / slot.as_us();
                // The message completes in the slots of rounds k .. k+slots_needed-1.
                start += TimeUs::from_us((slots_needed - 1) * round_us);
                start + slot
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_bus_adds_tx_time() {
        let bus = BusSpec::ideal();
        let t = bus.arrival_time(NodeId::new(0), 2, TimeUs::from_ms(10), TimeUs::from_ms(3));
        assert_eq!(t, TimeUs::from_ms(13));
    }

    #[test]
    fn ideal_bus_zero_tx_is_instant() {
        let bus = BusSpec::ideal();
        let t = bus.arrival_time(NodeId::new(1), 2, TimeUs::from_ms(10), TimeUs::ZERO);
        assert_eq!(t, TimeUs::from_ms(10));
    }

    #[test]
    fn tdma_waits_for_own_slot() {
        // Two nodes, 2 ms slots: rounds are [n1: 0-2, n2: 2-4], [n1: 4-6, ...].
        let bus = BusSpec::tdma(TimeUs::from_ms(2));
        // Message from n1 ready at t=0 ships in slot 0-2.
        assert_eq!(
            bus.arrival_time(NodeId::new(0), 2, TimeUs::ZERO, TimeUs::from_ms(1)),
            TimeUs::from_ms(2)
        );
        // Message from n2 ready at t=0 waits for its slot at 2-4.
        assert_eq!(
            bus.arrival_time(NodeId::new(1), 2, TimeUs::ZERO, TimeUs::from_ms(1)),
            TimeUs::from_ms(4)
        );
        // Message from n1 ready at t=1 misses slot 0 start, uses round 1.
        assert_eq!(
            bus.arrival_time(NodeId::new(0), 2, TimeUs::from_ms(1), TimeUs::from_ms(1)),
            TimeUs::from_ms(6)
        );
    }

    #[test]
    fn tdma_long_messages_span_rounds() {
        // 2 nodes, 2 ms slots; a 3 ms message needs 2 slots => 2 rounds.
        let bus = BusSpec::tdma(TimeUs::from_ms(2));
        assert_eq!(
            bus.arrival_time(NodeId::new(0), 2, TimeUs::ZERO, TimeUs::from_ms(3)),
            TimeUs::from_ms(6) // slot 0-2 of round 0 and 4-6 of round 1
        );
    }

    #[test]
    fn tdma_zero_tx_is_instant() {
        let bus = BusSpec::tdma(TimeUs::from_ms(2));
        assert_eq!(
            bus.arrival_time(NodeId::new(1), 3, TimeUs::from_ms(5), TimeUs::ZERO),
            TimeUs::from_ms(5)
        );
    }

    #[test]
    fn default_is_ideal() {
        assert_eq!(BusSpec::default(), BusSpec::ideal());
    }

    #[test]
    fn tdma_zero_tx_passes_through_even_between_slots() {
        // A zero-length message never touches the bus, even when it becomes
        // ready in the middle of a foreign slot.
        let bus = BusSpec::tdma(TimeUs::from_ms(2));
        for ready_ms in [0, 1, 2, 3, 5, 7] {
            let ready = TimeUs::from_ms(ready_ms);
            assert_eq!(
                bus.arrival_time(NodeId::new(0), 3, ready, TimeUs::ZERO),
                ready
            );
            assert_eq!(
                bus.arrival_time(NodeId::new(2), 3, ready, TimeUs::ZERO),
                ready
            );
        }
    }

    #[test]
    fn tdma_ready_exactly_at_slot_start_ships_in_that_slot() {
        // 3 nodes, 2 ms slots: node 2's slots start at 2, 8, 14, …; a
        // message that becomes ready exactly at a slot boundary must not be
        // pushed a full round.
        let bus = BusSpec::tdma(TimeUs::from_ms(2));
        assert_eq!(
            bus.arrival_time(NodeId::new(1), 3, TimeUs::from_ms(2), TimeUs::from_ms(1)),
            TimeUs::from_ms(4)
        );
        // One microsecond later it has missed the slot and waits a round.
        assert_eq!(
            bus.arrival_time(
                NodeId::new(1),
                3,
                TimeUs::from_ms(2) + TimeUs::from_us(1),
                TimeUs::from_ms(1)
            ),
            TimeUs::from_ms(10)
        );
    }

    #[test]
    fn tdma_tx_exactly_one_slot_fills_it() {
        // tx == slot needs exactly one slot, not two.
        let bus = BusSpec::tdma(TimeUs::from_ms(2));
        assert_eq!(
            bus.arrival_time(NodeId::new(0), 2, TimeUs::ZERO, TimeUs::from_ms(2)),
            TimeUs::from_ms(2)
        );
        // One microsecond more spills into the next round's slot.
        assert_eq!(
            bus.arrival_time(
                NodeId::new(0),
                2,
                TimeUs::ZERO,
                TimeUs::from_ms(2) + TimeUs::from_us(1)
            ),
            TimeUs::from_ms(6)
        );
    }

    #[test]
    fn tdma_multi_round_messages_count_whole_rounds() {
        // 3 nodes, 1 ms slots (3 ms round): a 5 ms message from node 0
        // needs ⌈5/1⌉ = 5 slots, i.e. rounds 0‥4; it completes at the end
        // of node 0's slot in round 4: 4·3 + 1 = 13 ms.
        let bus = BusSpec::tdma(TimeUs::from_ms(1));
        assert_eq!(
            bus.arrival_time(NodeId::new(0), 3, TimeUs::ZERO, TimeUs::from_ms(5)),
            TimeUs::from_ms(13)
        );
        // Same message from the last node: first slot starts at 2 ms, so
        // everything shifts by the sender offset.
        assert_eq!(
            bus.arrival_time(NodeId::new(2), 3, TimeUs::ZERO, TimeUs::from_ms(5)),
            TimeUs::from_ms(15)
        );
    }

    #[test]
    fn tdma_single_node_round_degenerates_to_back_to_back_slots() {
        // With one node the round equals the slot: the bus is a sequence of
        // contiguous slots owned by the sender.
        let bus = BusSpec::tdma(TimeUs::from_ms(2));
        assert_eq!(
            bus.arrival_time(NodeId::new(0), 1, TimeUs::from_ms(1), TimeUs::from_ms(3)),
            TimeUs::from_ms(6) // next slot starts at 2; 2 slots → ends at 6
        );
    }

    #[test]
    #[should_panic(expected = "slot length must be positive")]
    fn tdma_rejects_non_positive_slots() {
        BusSpec::tdma(TimeUs::ZERO).arrival_time(
            NodeId::new(0),
            2,
            TimeUs::ZERO,
            TimeUs::from_ms(1),
        );
    }
}
