//! An FxHash-style hasher for hot-loop hash maps.
//!
//! The optimization caches hash small keys (mapping vectors, probability
//! bit patterns) millions of times per search; SipHash's per-call setup
//! dominates at those sizes. This is the classic Firefox/rustc
//! multiply-rotate hash — not DoS-resistant, which is fine for keys the
//! search itself generates. Std-only stand-in for the `fxhash`/
//! `rustc-hash` crates (unavailable offline).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The classic multiply-rotate word hasher.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_ne_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn equal_keys_hash_equal() {
        let build = FastBuildHasher::default();
        let a = vec![1u32, 2, 3];
        assert_eq!(build.hash_one(&a), build.hash_one(a.clone()));
        assert_ne!(build.hash_one(&a), build.hash_one(vec![1u32, 2, 4]));
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FastHashMap<Vec<u64>, u32> = FastHashMap::default();
        map.insert(vec![1, 2, 3], 7);
        assert_eq!(map.get(&vec![1, 2, 3]), Some(&7));
        assert_eq!(map.get(&vec![1, 2]), None);
    }
}
