//! The complete problem instance: application + platform + timing + goal.

use serde::{Deserialize, Serialize};

use crate::application::Application;
use crate::bus::BusSpec;
use crate::error::ModelError;
use crate::goal::ReliabilityGoal;
use crate::node::Platform;
use crate::timing::TimingDb;

/// A full problem instance as given to the design optimization (the input
/// of the paper's Section 4 problem formulation):
///
/// * the application `A` (task graphs, deadlines, μ, period),
/// * the platform library `N` (node types with h-versions and costs),
/// * the timing database (`t_ijh`, `p_ijh` for every process/node/level),
/// * the reliability goal ρ within τ,
/// * the bus specification.
///
/// # Examples
///
/// ```
/// use ftes_model::paper;
///
/// let system = paper::fig1_system();
/// assert_eq!(system.application().process_count(), 4);
/// assert_eq!(system.platform().node_type_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct System {
    application: Application,
    platform: Platform,
    timing: TimingDb,
    goal: ReliabilityGoal,
    bus: BusSpec,
}

impl System {
    /// Bundles a problem instance, cross-validating the parts.
    ///
    /// # Errors
    ///
    /// Returns an error if the timing database does not cover the
    /// application's processes ([`ModelError::IncompleteMapping`] with the
    /// process counts) or violates the platform's level structure.
    pub fn new(
        application: Application,
        platform: Platform,
        timing: TimingDb,
        goal: ReliabilityGoal,
        bus: BusSpec,
    ) -> Result<Self, ModelError> {
        if timing.process_count() != application.process_count() {
            return Err(ModelError::IncompleteMapping {
                expected: application.process_count(),
                got: timing.process_count(),
            });
        }
        Ok(System {
            application,
            platform,
            timing,
            goal,
            bus,
        })
    }

    /// The application `A`.
    pub fn application(&self) -> &Application {
        &self.application
    }

    /// The platform library `N`.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The timing/failure-probability database.
    pub fn timing(&self) -> &TimingDb {
        &self.timing
    }

    /// The reliability goal ρ within τ.
    pub fn goal(&self) -> ReliabilityGoal {
        self.goal
    }

    /// The bus specification.
    pub fn bus(&self) -> BusSpec {
        self.bus
    }

    /// The same problem instance under a different bus specification.
    ///
    /// Scenario sweeps re-price the communication of one generated system
    /// under several bus models; everything else (application, platform,
    /// timing, goal) is shared unchanged.
    #[must_use]
    pub fn with_bus(&self, bus: BusSpec) -> Self {
        System {
            bus,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ApplicationBuilder;
    use crate::node::{Cost, NodeType};
    use crate::time::TimeUs;

    #[test]
    fn rejects_mismatched_timing_db() {
        let mut b = ApplicationBuilder::new("A");
        let g = b.add_graph("G1", TimeUs::from_ms(100));
        b.add_process(g, TimeUs::ZERO);
        b.add_process(g, TimeUs::ZERO);
        let app = b.build().unwrap();
        let platform =
            Platform::new(vec![NodeType::new("N1", vec![Cost::new(1)], 1.0).unwrap()]).unwrap();
        let timing = TimingDb::new(1, &platform); // wrong size
        let goal = ReliabilityGoal::per_hour(1e-5).unwrap();
        assert!(System::new(app, platform, timing, goal, BusSpec::ideal()).is_err());
    }

    #[test]
    fn accessors_return_parts() {
        let sys = crate::paper::fig1_system();
        assert_eq!(sys.application().name(), "A");
        assert_eq!(sys.goal().gamma(), 1e-5);
        assert_eq!(sys.bus(), BusSpec::ideal());
        assert_eq!(sys.timing().process_count(), 4);
    }

    #[test]
    fn with_bus_swaps_only_the_bus() {
        let sys = crate::paper::fig1_system();
        let tdma = sys.with_bus(BusSpec::tdma(TimeUs::from_ms(2)));
        assert_eq!(tdma.bus(), BusSpec::tdma(TimeUs::from_ms(2)));
        assert_eq!(tdma.application(), sys.application());
        assert_eq!(tdma.platform(), sys.platform());
        assert_eq!(tdma.timing(), sys.timing());
        assert_eq!(tdma.goal(), sys.goal());
    }
}
