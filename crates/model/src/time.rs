//! Time quantities with microsecond resolution.
//!
//! The paper works in milliseconds (WCETs of 1–20 ms, recovery overheads of
//! a few ms, deadlines of a few hundred ms). Hardening performance
//! degradation multiplies WCETs by factors such as 1.01, which is not exact
//! in milliseconds, so the whole library uses *integer microseconds*. This
//! keeps schedule arithmetic exact and platform independent.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A signed time quantity in integer microseconds.
///
/// `TimeUs` is a thin newtype over `i64`; all arithmetic is exact. One hour
/// is 3.6·10⁹ µs, far below `i64::MAX`, so overflow is not a practical
/// concern for the schedules handled here (debug builds still check).
///
/// # Examples
///
/// ```
/// use ftes_model::TimeUs;
///
/// let wcet = TimeUs::from_ms(75);
/// let mu = TimeUs::from_ms(15);
/// assert_eq!((wcet + mu).as_ms_f64(), 90.0);
/// assert_eq!(wcet.scale(1.2), TimeUs::from_ms(90));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TimeUs(i64);

impl TimeUs {
    /// The zero duration.
    pub const ZERO: TimeUs = TimeUs(0);
    /// One microsecond.
    pub const US: TimeUs = TimeUs(1);
    /// One millisecond.
    pub const MS: TimeUs = TimeUs(1_000);
    /// One second.
    pub const SECOND: TimeUs = TimeUs(1_000_000);
    /// One hour — the paper's reliability-goal time unit τ.
    pub const HOUR: TimeUs = TimeUs(3_600_000_000);
    /// The maximum representable time (used as "+∞" sentinel by schedulers).
    pub const MAX: TimeUs = TimeUs(i64::MAX);

    /// Creates a time from integer microseconds.
    #[inline]
    pub const fn from_us(us: i64) -> Self {
        TimeUs(us)
    }

    /// Creates a time from integer milliseconds.
    #[inline]
    pub const fn from_ms(ms: i64) -> Self {
        TimeUs(ms * 1_000)
    }

    /// Creates a time from fractional milliseconds, rounding to the nearest
    /// microsecond.
    #[inline]
    pub fn from_ms_f64(ms: f64) -> Self {
        TimeUs((ms * 1_000.0).round() as i64)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// microsecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        TimeUs((s * 1_000_000.0).round() as i64)
    }

    /// This time in integer microseconds.
    #[inline]
    pub const fn as_us(self) -> i64 {
        self.0
    }

    /// This time in fractional milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies by a non-negative factor, rounding to the nearest
    /// microsecond. Used for hardening performance degradation
    /// (`wcet.scale(1.25)` is the WCET at +25 % degradation).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[inline]
    pub fn scale(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "time scale factor must be finite and non-negative, got {factor}"
        );
        TimeUs((self.0 as f64 * factor).round() as i64)
    }

    /// Integer multiplication by a count (e.g. `k` re-executions).
    #[inline]
    pub const fn times(self, n: i64) -> Self {
        TimeUs(self.0 * n)
    }

    /// `true` if this time is negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// `true` if this time is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction clamped at zero — convenient for laxities.
    #[inline]
    pub fn saturating_sub_zero(self, other: Self) -> Self {
        TimeUs((self.0 - other.0).max(0))
    }

    /// How many whole periods of length `period` fit into this time
    /// (the paper's τ/T exponent in formula (6)).
    ///
    /// # Panics
    ///
    /// Panics if `period` is not strictly positive.
    #[inline]
    pub fn div_periods(self, period: TimeUs) -> f64 {
        assert!(
            period.0 > 0,
            "period must be strictly positive, got {period}"
        );
        self.0 as f64 / period.0 as f64
    }
}

impl Add for TimeUs {
    type Output = TimeUs;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        TimeUs(self.0 + rhs.0)
    }
}

impl AddAssign for TimeUs {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeUs {
    type Output = TimeUs;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        TimeUs(self.0 - rhs.0)
    }
}

impl SubAssign for TimeUs {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Neg for TimeUs {
    type Output = TimeUs;
    #[inline]
    fn neg(self) -> Self {
        TimeUs(-self.0)
    }
}

impl Mul<i64> for TimeUs {
    type Output = TimeUs;
    #[inline]
    fn mul(self, rhs: i64) -> Self {
        TimeUs(self.0 * rhs)
    }
}

impl Mul<TimeUs> for i64 {
    type Output = TimeUs;
    #[inline]
    fn mul(self, rhs: TimeUs) -> TimeUs {
        TimeUs(self * rhs.0)
    }
}

impl Div<TimeUs> for TimeUs {
    type Output = f64;
    #[inline]
    fn div(self, rhs: TimeUs) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for TimeUs {
    fn sum<I: Iterator<Item = TimeUs>>(iter: I) -> Self {
        TimeUs(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for TimeUs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us.abs() >= 1_000 && us % 1_000 == 0 {
            write!(f, "{}ms", us / 1_000)
        } else if us.abs() >= 1_000 {
            write!(f, "{:.3}ms", us as f64 / 1_000.0)
        } else {
            write!(f, "{us}us")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(TimeUs::from_ms(360).as_us(), 360_000);
        assert_eq!(TimeUs::from_us(360_000).as_ms_f64(), 360.0);
        assert_eq!(TimeUs::from_ms_f64(1.5).as_us(), 1_500);
        assert_eq!(TimeUs::from_secs_f64(0.001).as_us(), 1_000);
        assert_eq!(TimeUs::HOUR.as_secs_f64(), 3600.0);
    }

    #[test]
    fn arithmetic_is_exact() {
        let a = TimeUs::from_ms(75);
        let b = TimeUs::from_ms(15);
        assert_eq!(a + b, TimeUs::from_ms(90));
        assert_eq!(a - b, TimeUs::from_ms(60));
        assert_eq!(a * 3, TimeUs::from_ms(225));
        assert_eq!(3 * b, TimeUs::from_ms(45));
        assert_eq!(-b, TimeUs::from_ms(-15));
        let mut c = a;
        c += b;
        c -= TimeUs::from_ms(30);
        assert_eq!(c, TimeUs::from_ms(60));
    }

    #[test]
    fn scale_matches_hardening_degradation() {
        // 1 % degradation of a 75 ms WCET is exactly 75.75 ms = 75750 µs.
        assert_eq!(TimeUs::from_ms(75).scale(1.01).as_us(), 75_750);
        assert_eq!(TimeUs::from_ms(100).scale(2.0), TimeUs::from_ms(200));
        assert_eq!(TimeUs::from_ms(10).scale(0.0), TimeUs::ZERO);
    }

    #[test]
    #[should_panic(expected = "time scale factor")]
    fn scale_rejects_negative() {
        let _ = TimeUs::from_ms(1).scale(-0.5);
    }

    #[test]
    fn min_max_and_saturation() {
        let a = TimeUs::from_ms(10);
        let b = TimeUs::from_ms(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.saturating_sub_zero(b), TimeUs::ZERO);
        assert_eq!(b.saturating_sub_zero(a), TimeUs::from_ms(10));
    }

    #[test]
    fn div_periods_matches_paper_exponent() {
        // Appendix A.2: one hour of 360 ms iterations is 10 000 periods.
        let n = TimeUs::HOUR.div_periods(TimeUs::from_ms(360));
        assert_eq!(n, 10_000.0);
    }

    #[test]
    #[should_panic(expected = "period must be strictly positive")]
    fn div_periods_rejects_zero_period() {
        let _ = TimeUs::HOUR.div_periods(TimeUs::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TimeUs::from_ms(360).to_string(), "360ms");
        assert_eq!(TimeUs::from_us(1_500).to_string(), "1.500ms");
        assert_eq!(TimeUs::from_us(42).to_string(), "42us");
        assert_eq!(TimeUs::ZERO.to_string(), "0us");
    }

    #[test]
    fn sum_of_times() {
        let total: TimeUs = [TimeUs::from_ms(1), TimeUs::from_ms(2), TimeUs::from_ms(3)]
            .into_iter()
            .sum();
        assert_eq!(total, TimeUs::from_ms(6));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(TimeUs::from_ms(-5) < TimeUs::ZERO);
        assert!(TimeUs::from_ms(5) < TimeUs::from_ms(6));
        assert!(TimeUs::MAX > TimeUs::HOUR);
    }
}
