//! The timing and failure-probability database.
//!
//! For every process `P_i`, node type `N_j` and hardening level `h` the
//! paper needs two numbers: the worst-case execution time `t_ijh`
//! (determined with WCET analysis tools) and the process failure
//! probability `p_ijh` (determined with fault-injection experiments).
//! [`TimingDb`] stores the full table; entries may be absent when a process
//! cannot execute on a node type at all.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ids::{HLevel, NodeTypeId, ProcessId};
use crate::node::Platform;
use crate::prob::Prob;
use crate::time::TimeUs;

/// WCET and failure probability of one process on one h-version.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecSpec {
    /// Worst-case execution time `t_ijh` (includes fault-detection time).
    pub wcet: TimeUs,
    /// Probability `p_ijh` that a single execution fails.
    pub pfail: Prob,
}

impl ExecSpec {
    /// Creates an execution spec.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NegativeTime`] if the WCET is negative.
    pub fn new(wcet: TimeUs, pfail: Prob) -> Result<Self, ModelError> {
        if wcet.is_negative() {
            return Err(ModelError::NegativeTime { what: "WCET" });
        }
        Ok(ExecSpec { wcet, pfail })
    }
}

/// Dense table of [`ExecSpec`] entries indexed by (process, node type, h).
///
/// # Examples
///
/// ```
/// use ftes_model::{
///     Cost, ExecSpec, HLevel, NodeType, NodeTypeId, Platform, Prob, ProcessId, TimeUs, TimingDb,
/// };
///
/// let platform = Platform::new(vec![NodeType::new(
///     "N1",
///     vec![Cost::new(10), Cost::new(20)],
///     1.0,
/// )?])?;
/// let mut db = TimingDb::new(1, &platform);
/// let p1 = ProcessId::new(0);
/// let n1 = NodeTypeId::new(0);
/// db.set(
///     p1,
///     n1,
///     HLevel::new(1)?,
///     ExecSpec::new(TimeUs::from_ms(80), Prob::new(4e-2)?)?,
/// )?;
/// assert_eq!(db.spec(p1, n1, HLevel::new(1)?)?.wcet, TimeUs::from_ms(80));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingDb {
    n_processes: usize,
    /// Offsets into `entries` per node type (levels are ragged).
    h_counts: Vec<u8>,
    /// `entries[p][j][h-1]`.
    entries: Vec<Vec<Vec<Option<ExecSpec>>>>,
}

impl TimingDb {
    /// Creates an empty database for `n_processes` processes on `platform`.
    pub fn new(n_processes: usize, platform: &Platform) -> Self {
        let h_counts: Vec<u8> = platform
            .node_type_ids()
            .map(|id| platform.node_type(id).h_count())
            .collect();
        let per_process: Vec<Vec<Option<ExecSpec>>> =
            h_counts.iter().map(|&hc| vec![None; hc as usize]).collect();
        TimingDb {
            n_processes,
            h_counts,
            entries: vec![per_process; n_processes],
        }
    }

    /// Number of processes covered.
    pub fn process_count(&self) -> usize {
        self.n_processes
    }

    /// Sets the entry for `(p, j, h)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownEntity`] or
    /// [`ModelError::HardeningOutOfRange`] for out-of-range coordinates.
    pub fn set(
        &mut self,
        p: ProcessId,
        j: NodeTypeId,
        h: HLevel,
        spec: ExecSpec,
    ) -> Result<(), ModelError> {
        self.check_coords(p, j, h)?;
        self.entries[p.index()][j.index()][h.index()] = Some(spec);
        Ok(())
    }

    /// The entry for `(p, j, h)`, or `None` when the process cannot run
    /// there.
    pub fn get(&self, p: ProcessId, j: NodeTypeId, h: HLevel) -> Option<ExecSpec> {
        self.entries
            .get(p.index())?
            .get(j.index())?
            .get(h.index())
            .copied()
            .flatten()
    }

    /// The entry for `(p, j, h)`, as an error when missing.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingTiming`] when the entry is absent.
    pub fn spec(&self, p: ProcessId, j: NodeTypeId, h: HLevel) -> Result<ExecSpec, ModelError> {
        self.get(p, j, h).ok_or(ModelError::MissingTiming {
            process: p.index(),
            node_type: j.index(),
            h: h.get(),
        })
    }

    /// The WCET `t_ijh`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingTiming`] when the entry is absent.
    pub fn wcet(&self, p: ProcessId, j: NodeTypeId, h: HLevel) -> Result<TimeUs, ModelError> {
        Ok(self.spec(p, j, h)?.wcet)
    }

    /// The failure probability `p_ijh`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingTiming`] when the entry is absent.
    pub fn pfail(&self, p: ProcessId, j: NodeTypeId, h: HLevel) -> Result<Prob, ModelError> {
        Ok(self.spec(p, j, h)?.pfail)
    }

    /// `true` if process `p` can execute on node type `j` (i.e. it has an
    /// entry for every hardening level of `j`).
    pub fn supports(&self, p: ProcessId, j: NodeTypeId) -> bool {
        let Some(levels) = self.entries.get(p.index()).and_then(|e| e.get(j.index())) else {
            return false;
        };
        !levels.is_empty() && levels.iter().all(Option::is_some)
    }

    /// Checks that every (process, node type, h) triple has an entry —
    /// useful for fully-populated experimental setups.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingTiming`] naming the first hole.
    pub fn validate_complete(&self) -> Result<(), ModelError> {
        for (pi, per_node) in self.entries.iter().enumerate() {
            for (ji, levels) in per_node.iter().enumerate() {
                for (hi, e) in levels.iter().enumerate() {
                    if e.is_none() {
                        return Err(ModelError::MissingTiming {
                            process: pi,
                            node_type: ji,
                            h: (hi + 1) as u8,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn check_coords(&self, p: ProcessId, j: NodeTypeId, h: HLevel) -> Result<(), ModelError> {
        if p.index() >= self.n_processes {
            return Err(ModelError::UnknownEntity {
                kind: "process",
                index: p.index(),
            });
        }
        let Some(&hc) = self.h_counts.get(j.index()) else {
            return Err(ModelError::UnknownEntity {
                kind: "node type",
                index: j.index(),
            });
        };
        if h.get() > hc {
            return Err(ModelError::HardeningOutOfRange {
                node_type: j.index(),
                h: h.get(),
                available: hc,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Cost, NodeType};

    fn small_platform() -> Platform {
        Platform::new(vec![
            NodeType::new("N1", vec![Cost::new(10), Cost::new(20)], 1.0).unwrap(),
            NodeType::new("N2", vec![Cost::new(5)], 1.2).unwrap(),
        ])
        .unwrap()
    }

    fn spec_ms(ms: i64, p: f64) -> ExecSpec {
        ExecSpec::new(TimeUs::from_ms(ms), Prob::new(p).unwrap()).unwrap()
    }

    #[test]
    fn set_get_round_trip() {
        let platform = small_platform();
        let mut db = TimingDb::new(2, &platform);
        let h1 = HLevel::new(1).unwrap();
        db.set(ProcessId::new(0), NodeTypeId::new(0), h1, spec_ms(80, 4e-2))
            .unwrap();
        let e = db.spec(ProcessId::new(0), NodeTypeId::new(0), h1).unwrap();
        assert_eq!(e.wcet, TimeUs::from_ms(80));
        assert_eq!(e.pfail.value(), 4e-2);
        assert_eq!(
            db.wcet(ProcessId::new(0), NodeTypeId::new(0), h1).unwrap(),
            TimeUs::from_ms(80)
        );
    }

    #[test]
    fn missing_entries_are_reported() {
        let platform = small_platform();
        let db = TimingDb::new(2, &platform);
        let err = db
            .spec(
                ProcessId::new(1),
                NodeTypeId::new(1),
                HLevel::new(1).unwrap(),
            )
            .unwrap_err();
        assert_eq!(
            err,
            ModelError::MissingTiming {
                process: 1,
                node_type: 1,
                h: 1
            }
        );
        assert!(db
            .get(
                ProcessId::new(0),
                NodeTypeId::new(0),
                HLevel::new(1).unwrap()
            )
            .is_none());
    }

    #[test]
    fn coordinates_are_validated() {
        let platform = small_platform();
        let mut db = TimingDb::new(1, &platform);
        assert!(db
            .set(
                ProcessId::new(5),
                NodeTypeId::new(0),
                HLevel::new(1).unwrap(),
                spec_ms(1, 0.0)
            )
            .is_err());
        assert!(db
            .set(
                ProcessId::new(0),
                NodeTypeId::new(9),
                HLevel::new(1).unwrap(),
                spec_ms(1, 0.0)
            )
            .is_err());
        assert!(matches!(
            db.set(
                ProcessId::new(0),
                NodeTypeId::new(1),
                HLevel::new(2).unwrap(),
                spec_ms(1, 0.0)
            )
            .unwrap_err(),
            ModelError::HardeningOutOfRange { .. }
        ));
    }

    #[test]
    fn supports_requires_all_levels() {
        let platform = small_platform();
        let mut db = TimingDb::new(1, &platform);
        let p = ProcessId::new(0);
        let n1 = NodeTypeId::new(0);
        assert!(!db.supports(p, n1));
        db.set(p, n1, HLevel::new(1).unwrap(), spec_ms(10, 1e-3))
            .unwrap();
        assert!(!db.supports(p, n1), "h2 still missing");
        db.set(p, n1, HLevel::new(2).unwrap(), spec_ms(12, 1e-5))
            .unwrap();
        assert!(db.supports(p, n1));
    }

    #[test]
    fn validate_complete_finds_holes() {
        let platform = small_platform();
        let mut db = TimingDb::new(1, &platform);
        let p = ProcessId::new(0);
        db.set(
            p,
            NodeTypeId::new(0),
            HLevel::new(1).unwrap(),
            spec_ms(10, 0.0),
        )
        .unwrap();
        db.set(
            p,
            NodeTypeId::new(0),
            HLevel::new(2).unwrap(),
            spec_ms(12, 0.0),
        )
        .unwrap();
        assert_eq!(
            db.validate_complete().unwrap_err(),
            ModelError::MissingTiming {
                process: 0,
                node_type: 1,
                h: 1
            }
        );
        db.set(
            p,
            NodeTypeId::new(1),
            HLevel::new(1).unwrap(),
            spec_ms(9, 0.0),
        )
        .unwrap();
        assert!(db.validate_complete().is_ok());
    }

    #[test]
    fn exec_spec_rejects_negative_wcet() {
        assert!(ExecSpec::new(TimeUs::from_ms(-1), Prob::ZERO).is_err());
    }
}

/// Read-only access to the `(process, node type, h)` timing table.
///
/// Implemented by [`TimingDb`] (the canonical nested storage) and
/// [`FlatTiming`] (a contiguous snapshot for hot loops). Both return the
/// identical [`ExecSpec`] values for identical coordinates, so generic
/// consumers produce bit-identical results either way.
pub trait TimingSource {
    /// The entry for `(p, j, h)`, as an error when missing.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingTiming`] when the entry is absent.
    fn spec(&self, p: ProcessId, j: NodeTypeId, h: HLevel) -> Result<ExecSpec, ModelError>;

    /// The WCET `t_ijh`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingTiming`] when the entry is absent.
    fn wcet(&self, p: ProcessId, j: NodeTypeId, h: HLevel) -> Result<TimeUs, ModelError> {
        Ok(self.spec(p, j, h)?.wcet)
    }

    /// The failure probability `p_ijh`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingTiming`] when the entry is absent.
    fn pfail(&self, p: ProcessId, j: NodeTypeId, h: HLevel) -> Result<Prob, ModelError> {
        Ok(self.spec(p, j, h)?.pfail)
    }
}

impl TimingSource for TimingDb {
    fn spec(&self, p: ProcessId, j: NodeTypeId, h: HLevel) -> Result<ExecSpec, ModelError> {
        TimingDb::spec(self, p, j, h)
    }
}

/// A contiguous snapshot of a [`TimingDb`]: one flat array with arithmetic
/// indexing, so the two lookups every candidate evaluation performs per
/// process (WCET for the schedule, `p_ijh` for the SFP analysis) are a
/// single predictable load instead of a three-level pointer chase.
///
/// Build once per search over a fixed system; lookups return exactly what
/// the source [`TimingDb`] would.
#[derive(Debug, Clone)]
pub struct FlatTiming {
    /// Prefix offsets per node type into one process's row; the last entry
    /// is the row stride.
    offsets: Vec<u32>,
    specs: Vec<Option<ExecSpec>>,
}

impl FlatTiming {
    /// Snapshots `db` into flat storage.
    pub fn new(db: &TimingDb) -> Self {
        let mut offsets = Vec::with_capacity(db.h_counts.len() + 1);
        let mut total = 0u32;
        for &hc in &db.h_counts {
            offsets.push(total);
            total += u32::from(hc);
        }
        offsets.push(total);
        let stride = total as usize;
        let mut specs = vec![None; stride * db.n_processes];
        for (pi, per_process) in db.entries.iter().enumerate() {
            for (ji, levels) in per_process.iter().enumerate() {
                for (hi, entry) in levels.iter().enumerate() {
                    specs[pi * stride + offsets[ji] as usize + hi] = *entry;
                }
            }
        }
        FlatTiming { offsets, specs }
    }

    fn get(&self, p: ProcessId, j: NodeTypeId, h: HLevel) -> Option<ExecSpec> {
        let ji = j.index();
        let lo = *self.offsets.get(ji)? as usize;
        let hi_bound = *self.offsets.get(ji + 1)? as usize;
        let slot = lo + h.index();
        if slot >= hi_bound {
            return None;
        }
        let stride = *self.offsets.last().expect("offsets never empty") as usize;
        self.specs.get(p.index() * stride + slot).copied().flatten()
    }
}

impl TimingSource for FlatTiming {
    fn spec(&self, p: ProcessId, j: NodeTypeId, h: HLevel) -> Result<ExecSpec, ModelError> {
        self.get(p, j, h).ok_or(ModelError::MissingTiming {
            process: p.index(),
            node_type: j.index(),
            h: h.get(),
        })
    }
}
