//! Selected architectures: concrete node instances with hardening levels.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ids::{HLevel, NodeId, NodeTypeId};
use crate::node::{Cost, Platform};

/// One concrete node slot of an architecture: a node type at a chosen
/// hardening level (`N_j^h` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeInstance {
    /// Which node type from the platform library occupies the slot.
    pub node_type: NodeTypeId,
    /// The selected hardening level.
    pub hardening: HLevel,
}

/// A selected architecture `AR`: an ordered set of node instances.
///
/// The design-space exploration mutates the hardening levels in place via
/// [`set_hardening`](Architecture::set_hardening) while keeping the node
/// selection fixed.
///
/// # Examples
///
/// ```
/// use ftes_model::{Architecture, Cost, HLevel, NodeType, NodeTypeId, Platform};
///
/// let platform = Platform::new(vec![
///     NodeType::new("N1", vec![Cost::new(16), Cost::new(32), Cost::new(64)], 1.0)?,
///     NodeType::new("N2", vec![Cost::new(20), Cost::new(40), Cost::new(80)], 1.1)?,
/// ])?;
/// let mut arch = Architecture::with_min_hardening(&[NodeTypeId::new(0), NodeTypeId::new(1)]);
/// arch.set_hardening(ftes_model::NodeId::new(0), HLevel::new(2)?);
/// arch.set_hardening(ftes_model::NodeId::new(1), HLevel::new(2)?);
/// assert_eq!(arch.cost(&platform)?, Cost::new(72)); // Fig. 4a: Ca = 72
/// # Ok::<(), ftes_model::ModelError>(())
/// ```
#[derive(Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Architecture {
    nodes: Vec<NodeInstance>,
}

// Manual `Clone` so `clone_from` reuses the destination's allocation —
// the search engine's candidate arena rewrites pooled architectures
// thousands of times per exploration (a derived impl would fall back to
// the allocating `*self = source.clone()`).
impl Clone for Architecture {
    fn clone(&self) -> Self {
        Architecture {
            nodes: self.nodes.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.nodes.clone_from(&source.nodes);
    }
}

impl Architecture {
    /// Creates an architecture from explicit node instances.
    pub fn new(nodes: Vec<NodeInstance>) -> Self {
        Architecture { nodes }
    }

    /// Creates an architecture using the given node types, all at the
    /// minimum hardening level (the paper's `SetMinHardening`).
    pub fn with_min_hardening(types: &[NodeTypeId]) -> Self {
        Architecture {
            nodes: types
                .iter()
                .map(|&t| NodeInstance {
                    node_type: t,
                    hardening: HLevel::MIN,
                })
                .collect(),
        }
    }

    /// Creates an architecture using the given node types, all at their
    /// maximum hardening level (the paper's MAX baseline).
    pub fn with_max_hardening(types: &[NodeTypeId], platform: &Platform) -> Self {
        Architecture {
            nodes: types
                .iter()
                .map(|&t| NodeInstance {
                    node_type: t,
                    hardening: platform.node_type(t).max_h(),
                })
                .collect(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node instances in slot order.
    pub fn nodes(&self) -> &[NodeInstance] {
        &self.nodes
    }

    /// Iterates over node ids.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId::new)
    }

    /// The instance in slot `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn node(&self, n: NodeId) -> NodeInstance {
        self.nodes[n.index()]
    }

    /// The node type occupying slot `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn node_type(&self, n: NodeId) -> NodeTypeId {
        self.nodes[n.index()].node_type
    }

    /// The hardening level of slot `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn hardening(&self, n: NodeId) -> HLevel {
        self.nodes[n.index()].hardening
    }

    /// Sets the hardening level of slot `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range. Level validity against the platform is
    /// checked by [`validate`](Architecture::validate) / [`cost`](Architecture::cost).
    pub fn set_hardening(&mut self, n: NodeId, h: HLevel) {
        self.nodes[n.index()].hardening = h;
    }

    /// Resets every node to minimum hardening.
    pub fn set_min_hardening(&mut self) {
        for node in &mut self.nodes {
            node.hardening = HLevel::MIN;
        }
    }

    /// The total architecture cost `Σ_j C_j^h` (the paper's `GetCost`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::HardeningOutOfRange`] if any slot's level is
    /// not offered by its node type.
    pub fn cost(&self, platform: &Platform) -> Result<Cost, ModelError> {
        let mut total = Cost::ZERO;
        for (i, inst) in self.nodes.iter().enumerate() {
            let nt = platform.node_type(inst.node_type);
            let c = nt
                .cost(inst.hardening)
                .map_err(|_| ModelError::HardeningOutOfRange {
                    node_type: inst.node_type.index(),
                    h: inst.hardening.get(),
                    available: nt.h_count(),
                })?;
            let _ = i;
            total += c;
        }
        Ok(total)
    }

    /// Validates all slots against the platform.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownEntity`] for a dangling node type or
    /// [`ModelError::HardeningOutOfRange`] for an unavailable level.
    pub fn validate(&self, platform: &Platform) -> Result<(), ModelError> {
        for inst in &self.nodes {
            if inst.node_type.index() >= platform.node_type_count() {
                return Err(ModelError::UnknownEntity {
                    kind: "node type",
                    index: inst.node_type.index(),
                });
            }
            let nt = platform.node_type(inst.node_type);
            if !nt.has_level(inst.hardening) {
                return Err(ModelError::HardeningOutOfRange {
                    node_type: inst.node_type.index(),
                    h: inst.hardening.get(),
                    available: nt.h_count(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, inst) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}^{}", inst.node_type, inst.hardening.get())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeType;

    fn platform() -> Platform {
        Platform::new(vec![
            NodeType::new("N1", vec![Cost::new(16), Cost::new(32), Cost::new(64)], 1.0).unwrap(),
            NodeType::new("N2", vec![Cost::new(20), Cost::new(40), Cost::new(80)], 1.1).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn min_and_max_hardening_constructors() {
        let p = platform();
        let types = [NodeTypeId::new(0), NodeTypeId::new(1)];
        let min = Architecture::with_min_hardening(&types);
        assert!(min.node_ids().all(|n| min.hardening(n) == HLevel::MIN));
        assert_eq!(min.cost(&p).unwrap(), Cost::new(36));
        let max = Architecture::with_max_hardening(&types, &p);
        assert!(max.node_ids().all(|n| max.hardening(n).get() == 3));
        assert_eq!(max.cost(&p).unwrap(), Cost::new(144));
    }

    #[test]
    fn fig4_costs() {
        let p = platform();
        // Fig. 4a: N1^2 + N2^2 = 32 + 40 = 72.
        let mut a = Architecture::with_min_hardening(&[NodeTypeId::new(0), NodeTypeId::new(1)]);
        a.set_hardening(NodeId::new(0), HLevel::new(2).unwrap());
        a.set_hardening(NodeId::new(1), HLevel::new(2).unwrap());
        assert_eq!(a.cost(&p).unwrap(), Cost::new(72));
        // Fig. 4b: N1^2 alone = 32.
        let mut b = Architecture::with_min_hardening(&[NodeTypeId::new(0)]);
        b.set_hardening(NodeId::new(0), HLevel::new(2).unwrap());
        assert_eq!(b.cost(&p).unwrap(), Cost::new(32));
        // Fig. 4c: N2^2 alone = 40.
        let mut c = Architecture::with_min_hardening(&[NodeTypeId::new(1)]);
        c.set_hardening(NodeId::new(0), HLevel::new(2).unwrap());
        assert_eq!(c.cost(&p).unwrap(), Cost::new(40));
        // Fig. 4d: N1^3 = 64; Fig. 4e: N2^3 = 80.
        let d = Architecture::with_max_hardening(&[NodeTypeId::new(0)], &p);
        assert_eq!(d.cost(&p).unwrap(), Cost::new(64));
        let e = Architecture::with_max_hardening(&[NodeTypeId::new(1)], &p);
        assert_eq!(e.cost(&p).unwrap(), Cost::new(80));
    }

    #[test]
    fn validation_catches_bad_levels() {
        let p = platform();
        let mut a = Architecture::with_min_hardening(&[NodeTypeId::new(0)]);
        a.set_hardening(NodeId::new(0), HLevel::new(4).unwrap());
        assert!(a.validate(&p).is_err());
        assert!(a.cost(&p).is_err());
        let dangling = Architecture::with_min_hardening(&[NodeTypeId::new(7)]);
        assert!(matches!(
            dangling.validate(&p).unwrap_err(),
            ModelError::UnknownEntity { .. }
        ));
    }

    #[test]
    fn set_min_hardening_resets() {
        let p = platform();
        let types = [NodeTypeId::new(0), NodeTypeId::new(1)];
        let mut a = Architecture::with_max_hardening(&types, &p);
        a.set_min_hardening();
        assert!(a.node_ids().all(|n| a.hardening(n) == HLevel::MIN));
    }

    #[test]
    fn display_shows_types_and_levels() {
        let mut a = Architecture::with_min_hardening(&[NodeTypeId::new(0), NodeTypeId::new(1)]);
        a.set_hardening(NodeId::new(1), HLevel::new(3).unwrap());
        assert_eq!(a.to_string(), "[N1^1, N2^3]");
    }
}
