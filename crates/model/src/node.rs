//! Computation node types, h-versions and the platform library.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ids::{HLevel, NodeTypeId};

/// A monetary/area cost in abstract cost units.
///
/// The paper expresses node costs in integer units (e.g. 16/32/64 for the
/// h-versions of `N1` in Fig. 1) and compares architectures by summed cost.
///
/// # Examples
///
/// ```
/// use ftes_model::Cost;
///
/// let total: Cost = [Cost::new(32), Cost::new(40)].into_iter().sum();
/// assert_eq!(total, Cost::new(72));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cost(u64);

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost(0);
    /// The largest representable cost (used as "+∞" by optimizers, the
    /// paper's `MAX_COST`).
    pub const MAX: Cost = Cost(u64::MAX);

    /// Creates a cost from raw units.
    #[inline]
    pub const fn new(units: u64) -> Self {
        Cost(units)
    }

    /// The raw cost units.
    #[inline]
    pub const fn units(self) -> u64 {
        self.0
    }

    /// Saturating addition (so `Cost::MAX` behaves as infinity).
    #[inline]
    pub const fn saturating_add(self, rhs: Cost) -> Cost {
        Cost(self.0.saturating_add(rhs.0))
    }
}

impl Add for Cost {
    type Output = Cost;
    #[inline]
    fn add(self, rhs: Cost) -> Cost {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Cost {
    #[inline]
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Self {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            write!(f, "MAX_COST")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A computation node type `N_j`, available in several hardened versions.
///
/// The h-version `N_j^h` has cost `C_j^h`; its WCETs and process failure
/// probabilities live in the [`TimingDb`](crate::TimingDb) because they are
/// application specific.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeType {
    name: String,
    /// Cost per hardening level; `costs[h-1]` is the cost of `N_j^h`.
    costs: Vec<Cost>,
    /// Relative speed factor of this node type (1.0 = fastest); used by the
    /// design strategy to order "fastest" architectures (Fig. 5, lines 2
    /// and 18). Larger is slower.
    speed_factor: f64,
}

impl NodeType {
    /// Creates a node type with one cost per hardening level.
    ///
    /// `speed_factor` orders node types by performance (1.0 = reference
    /// speed; 1.5 = 50 % slower). It is only used to rank candidate
    /// architectures, never in schedule arithmetic (WCETs are explicit).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyNodeType`] if `costs` is empty.
    pub fn new(
        name: impl Into<String>,
        costs: Vec<Cost>,
        speed_factor: f64,
    ) -> Result<Self, ModelError> {
        if costs.is_empty() {
            return Err(ModelError::EmptyNodeType { node_type: 0 });
        }
        Ok(NodeType {
            name: name.into(),
            costs,
            speed_factor,
        })
    }

    /// The node-type name (`"N1"`, `"ETM"`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of available hardening levels.
    pub fn h_count(&self) -> u8 {
        self.costs.len() as u8
    }

    /// The maximum hardening level of this type.
    pub fn max_h(&self) -> HLevel {
        HLevel::new(self.h_count()).expect("h_count >= 1 by construction")
    }

    /// `true` if this node type offers hardening level `h`.
    pub fn has_level(&self, h: HLevel) -> bool {
        h.index() < self.costs.len()
    }

    /// The cost `C_j^h` of h-version `h`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::HardeningOutOfRange`] if the level does not
    /// exist for this type.
    pub fn cost(&self, h: HLevel) -> Result<Cost, ModelError> {
        self.costs
            .get(h.index())
            .copied()
            .ok_or(ModelError::HardeningOutOfRange {
                node_type: 0,
                h: h.get(),
                available: self.h_count(),
            })
    }

    /// The relative speed factor (1.0 = fastest reference).
    pub fn speed_factor(&self) -> f64 {
        self.speed_factor
    }
}

/// The library of available node types (the paper's set `N`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    node_types: Vec<NodeType>,
}

impl Platform {
    /// Creates a platform from a list of node types.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyNodeType`] (with the offending index) if
    /// any node type has zero h-versions, and [`ModelError::EmptyApplication`]
    /// is *not* checked here — an empty platform is reported as
    /// [`ModelError::UnknownEntity`] on first access instead.
    pub fn new(node_types: Vec<NodeType>) -> Result<Self, ModelError> {
        for (i, nt) in node_types.iter().enumerate() {
            if nt.h_count() == 0 {
                return Err(ModelError::EmptyNodeType { node_type: i });
            }
        }
        Ok(Platform { node_types })
    }

    /// Number of node types in the library.
    pub fn node_type_count(&self) -> usize {
        self.node_types.len()
    }

    /// Looks up a node type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_type(&self, id: NodeTypeId) -> &NodeType {
        &self.node_types[id.index()]
    }

    /// Iterates over all node-type ids.
    pub fn node_type_ids(&self) -> impl ExactSizeIterator<Item = NodeTypeId> + '_ {
        (0..self.node_types.len() as u32).map(NodeTypeId::new)
    }

    /// Node-type ids sorted fastest-first (by speed factor, ties by index).
    /// This is the order `SelectArch`/`SelectNextArch` of the paper's
    /// Fig. 5 walk candidate architectures in.
    pub fn ids_fastest_first(&self) -> Vec<NodeTypeId> {
        let mut ids: Vec<NodeTypeId> = self.node_type_ids().collect();
        ids.sort_by(|&a, &b| {
            self.node_types[a.index()]
                .speed_factor()
                .partial_cmp(&self.node_types[b.index()].speed_factor())
                .expect("speed factors are finite")
                .then(a.index().cmp(&b.index()))
        });
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n1() -> NodeType {
        NodeType::new("N1", vec![Cost::new(16), Cost::new(32), Cost::new(64)], 1.0).unwrap()
    }

    #[test]
    fn cost_arithmetic_saturates() {
        assert_eq!(Cost::new(1) + Cost::new(2), Cost::new(3));
        assert_eq!(Cost::MAX + Cost::new(1), Cost::MAX);
        let mut c = Cost::ZERO;
        c += Cost::new(5);
        assert_eq!(c.units(), 5);
        assert_eq!(Cost::MAX.to_string(), "MAX_COST");
        assert_eq!(Cost::new(72).to_string(), "72");
    }

    #[test]
    fn node_type_levels_and_costs() {
        let nt = n1();
        assert_eq!(nt.h_count(), 3);
        assert_eq!(nt.max_h().get(), 3);
        assert!(nt.has_level(HLevel::new(3).unwrap()));
        assert!(!nt.has_level(HLevel::new(4).unwrap()));
        assert_eq!(nt.cost(HLevel::new(2).unwrap()).unwrap(), Cost::new(32));
        assert!(matches!(
            nt.cost(HLevel::new(4).unwrap()).unwrap_err(),
            ModelError::HardeningOutOfRange {
                h: 4,
                available: 3,
                ..
            }
        ));
    }

    #[test]
    fn node_type_requires_costs() {
        assert!(NodeType::new("empty", vec![], 1.0).is_err());
    }

    #[test]
    fn platform_orders_fastest_first() {
        let slow = NodeType::new("slow", vec![Cost::new(1)], 1.8).unwrap();
        let fast = NodeType::new("fast", vec![Cost::new(2)], 1.0).unwrap();
        let mid = NodeType::new("mid", vec![Cost::new(3)], 1.4).unwrap();
        let platform = Platform::new(vec![slow, fast, mid]).unwrap();
        let order = platform.ids_fastest_first();
        let names: Vec<&str> = order
            .iter()
            .map(|&id| platform.node_type(id).name())
            .collect();
        assert_eq!(names, vec!["fast", "mid", "slow"]);
    }
}
