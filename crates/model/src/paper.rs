//! Fixtures reproducing the paper's worked examples.
//!
//! The DATE'09 paper illustrates its analysis on two small systems:
//!
//! * **Fig. 1** — application `A`: a four-process task graph (`P1 → P2`,
//!   `P1 → P3`, `P2 → P4`, `P3 → P4`) with deadline 360 ms, recovery
//!   overhead μ = 15 ms and reliability goal ρ = 1 − 10⁻⁵ per hour, mapped
//!   onto two node types `N1`/`N2` with three h-versions each.
//! * **Fig. 3** — a single process `P1` on node `N1` with three h-versions,
//!   μ = 20 ms, deadline 360 ms, used to show the hardware/software recovery
//!   trade-off.
//!
//! The table layout in the published PDF is scrambled by text extraction;
//! the values here are reconstructed such that **every** derived number in
//! the paper holds (architecture costs Ca…Ce, the Appendix A.2
//! probabilities, and the Fig. 3/Fig. 4 schedulability verdicts). See
//! `DESIGN.md` for the reconstruction argument.

use crate::architecture::Architecture;
use crate::builder::ApplicationBuilder;
use crate::bus::BusSpec;
use crate::goal::ReliabilityGoal;
use crate::ids::{HLevel, NodeId, NodeTypeId, ProcessId};
use crate::mapping::Mapping;
use crate::node::{Cost, NodeType, Platform};
use crate::prob::Prob;
use crate::system::System;
use crate::time::TimeUs;
use crate::timing::{ExecSpec, TimingDb};

fn h(level: u8) -> HLevel {
    HLevel::new(level).expect("fixture levels are valid")
}

fn spec(ms: i64, p: f64) -> ExecSpec {
    ExecSpec::new(
        TimeUs::from_ms(ms),
        Prob::new(p).expect("fixture probability"),
    )
    .expect("fixture WCET")
}

/// The application of Fig. 1: the diamond `P1 → {P2, P3} → P4` with
/// deadline and period 360 ms and μ = 15 ms.
pub fn fig1_application() -> crate::Application {
    let mut b = ApplicationBuilder::new("A");
    b.set_period(TimeUs::from_ms(360));
    let g1 = b.add_graph("G1", TimeUs::from_ms(360));
    let mu = TimeUs::from_ms(15);
    let p1 = b.add_process(g1, mu);
    let p2 = b.add_process(g1, mu);
    let p3 = b.add_process(g1, mu);
    let p4 = b.add_process(g1, mu);
    b.add_message(p1, p2, TimeUs::ZERO).expect("m1");
    b.add_message(p1, p3, TimeUs::ZERO).expect("m2");
    b.add_message(p2, p4, TimeUs::ZERO).expect("m3");
    b.add_message(p3, p4, TimeUs::ZERO).expect("m4");
    b.build().expect("fig1 application is valid")
}

/// The platform of Fig. 1: node types `N1` (costs 16/32/64) and `N2`
/// (costs 20/40/80), three h-versions each. `N2` is the faster type.
pub fn fig1_platform() -> Platform {
    Platform::new(vec![
        NodeType::new("N1", vec![Cost::new(16), Cost::new(32), Cost::new(64)], 1.2).expect("N1"),
        NodeType::new("N2", vec![Cost::new(20), Cost::new(40), Cost::new(80)], 1.0).expect("N2"),
    ])
    .expect("fig1 platform")
}

/// The WCET/failure-probability tables of Fig. 1.
pub fn fig1_timing() -> TimingDb {
    let platform = fig1_platform();
    let mut db = TimingDb::new(4, &platform);
    let n1 = NodeTypeId::new(0);
    let n2 = NodeTypeId::new(1);

    // N1: per level, WCETs for P1..P4 and failure probabilities.
    let n1_wcet = [[60, 75, 60, 75], [75, 90, 75, 90], [90, 105, 90, 105]];
    let n1_p = [
        [1.2e-3, 1.3e-3, 1.4e-3, 1.6e-3],
        [1.2e-5, 1.3e-5, 1.4e-5, 1.6e-5],
        [1.2e-10, 1.3e-10, 1.4e-10, 1.6e-10],
    ];
    // N2 is faster but the probabilities are slightly different.
    let n2_wcet = [[50, 65, 50, 65], [60, 75, 60, 75], [75, 90, 75, 90]];
    let n2_p = [
        [1.0e-3, 1.2e-3, 1.2e-3, 1.3e-3],
        [1.0e-5, 1.2e-5, 1.2e-5, 1.3e-5],
        [1.0e-10, 1.2e-10, 1.2e-10, 1.3e-10],
    ];

    for (nt, wcets, probs) in [(n1, &n1_wcet, &n1_p), (n2, &n2_wcet, &n2_p)] {
        for (li, (w_row, p_row)) in wcets.iter().zip(probs.iter()).enumerate() {
            for pi in 0..4 {
                db.set(
                    ProcessId::new(pi as u32),
                    nt,
                    h(li as u8 + 1),
                    spec(w_row[pi], p_row[pi]),
                )
                .expect("fig1 timing entry");
            }
        }
    }
    db
}

/// The full Fig. 1 problem instance (ρ = 1 − 10⁻⁵ per hour, ideal bus).
pub fn fig1_system() -> System {
    System::new(
        fig1_application(),
        fig1_platform(),
        fig1_timing(),
        ReliabilityGoal::per_hour(1e-5).expect("fig1 goal"),
        BusSpec::ideal(),
    )
    .expect("fig1 system")
}

/// The five architecture/mapping alternatives evaluated in Fig. 4.
///
/// Returns `(architecture, mapping)` for variants `'a'`–`'e'`:
///
/// | variant | architecture    | mapping                | paper verdict |
/// |---------|-----------------|------------------------|---------------|
/// | a       | `N1²`, `N2²`    | P1,P2→N1; P3,P4→N2     | schedulable, C=72 |
/// | b       | `N1²`           | all → N1               | unschedulable, C=32 |
/// | c       | `N2²`           | all → N2               | unschedulable, C=40 |
/// | d       | `N1³`           | all → N1               | unschedulable, C=64 |
/// | e       | `N2³`           | all → N2               | schedulable, C=80 |
///
/// # Panics
///
/// Panics on a variant outside `'a'..='e'`.
pub fn fig4_alternative(variant: char) -> (Architecture, Mapping) {
    let n1 = NodeTypeId::new(0);
    let n2 = NodeTypeId::new(1);
    match variant {
        'a' => {
            let mut arch = Architecture::with_min_hardening(&[n1, n2]);
            arch.set_hardening(NodeId::new(0), h(2));
            arch.set_hardening(NodeId::new(1), h(2));
            let mut mapping = Mapping::all_on(4, NodeId::new(0));
            mapping.assign(ProcessId::new(2), NodeId::new(1));
            mapping.assign(ProcessId::new(3), NodeId::new(1));
            (arch, mapping)
        }
        'b' => {
            let mut arch = Architecture::with_min_hardening(&[n1]);
            arch.set_hardening(NodeId::new(0), h(2));
            (arch, Mapping::all_on(4, NodeId::new(0)))
        }
        'c' => {
            let mut arch = Architecture::with_min_hardening(&[n2]);
            arch.set_hardening(NodeId::new(0), h(2));
            (arch, Mapping::all_on(4, NodeId::new(0)))
        }
        'd' => {
            let mut arch = Architecture::with_min_hardening(&[n1]);
            arch.set_hardening(NodeId::new(0), h(3));
            (arch, Mapping::all_on(4, NodeId::new(0)))
        }
        'e' => {
            let mut arch = Architecture::with_min_hardening(&[n2]);
            arch.set_hardening(NodeId::new(0), h(3));
            (arch, Mapping::all_on(4, NodeId::new(0)))
        }
        other => panic!("unknown Fig. 4 variant '{other}' (expected 'a'..='e')"),
    }
}

/// The single-process application of Fig. 3 (μ = 20 ms, deadline 360 ms).
pub fn fig3_application() -> crate::Application {
    let mut b = ApplicationBuilder::new("Fig3");
    b.set_period(TimeUs::from_ms(360));
    let g1 = b.add_graph("G1", TimeUs::from_ms(360));
    b.add_process(g1, TimeUs::from_ms(20));
    b.build().expect("fig3 application is valid")
}

/// The platform of Fig. 3: one node type `N1` with costs 10/20/40.
pub fn fig3_platform() -> Platform {
    Platform::new(vec![NodeType::new(
        "N1",
        vec![Cost::new(10), Cost::new(20), Cost::new(40)],
        1.0,
    )
    .expect("N1")])
    .expect("fig3 platform")
}

/// The Fig. 3 timing table: `t = 80/100/160 ms`, `p = 4·10⁻²/4·10⁻⁴/4·10⁻⁶`.
pub fn fig3_timing() -> TimingDb {
    let platform = fig3_platform();
    let mut db = TimingDb::new(1, &platform);
    let n1 = NodeTypeId::new(0);
    let p1 = ProcessId::new(0);
    db.set(p1, n1, h(1), spec(80, 4e-2)).expect("fig3 h1");
    db.set(p1, n1, h(2), spec(100, 4e-4)).expect("fig3 h2");
    db.set(p1, n1, h(3), spec(160, 4e-6)).expect("fig3 h3");
    db
}

/// The full Fig. 3 problem instance.
pub fn fig3_system() -> System {
    System::new(
        fig3_application(),
        fig3_platform(),
        fig3_timing(),
        ReliabilityGoal::per_hour(1e-5).expect("fig3 goal"),
        BusSpec::ideal(),
    )
    .expect("fig3 system")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_tables_match_appendix_a2_inputs() {
        let db = fig1_timing();
        // A.2 computes Pr(0; N1^2) from p = 1.2e-5 (P1) and 1.3e-5 (P2)...
        assert_eq!(
            db.pfail(ProcessId::new(0), NodeTypeId::new(0), h(2))
                .unwrap()
                .value(),
            1.2e-5
        );
        assert_eq!(
            db.pfail(ProcessId::new(1), NodeTypeId::new(0), h(2))
                .unwrap()
                .value(),
            1.3e-5
        );
        // ...and Pr(0; N2^2) from p = 1.2e-5 (P3) and 1.3e-5 (P4).
        assert_eq!(
            db.pfail(ProcessId::new(2), NodeTypeId::new(1), h(2))
                .unwrap()
                .value(),
            1.2e-5
        );
        assert_eq!(
            db.pfail(ProcessId::new(3), NodeTypeId::new(1), h(2))
                .unwrap()
                .value(),
            1.3e-5
        );
    }

    #[test]
    fn fig1_wcets_increase_with_hardening() {
        let db = fig1_timing();
        for nt in [NodeTypeId::new(0), NodeTypeId::new(1)] {
            for p in 0..4 {
                let p = ProcessId::new(p);
                let t1 = db.wcet(p, nt, h(1)).unwrap();
                let t2 = db.wcet(p, nt, h(2)).unwrap();
                let t3 = db.wcet(p, nt, h(3)).unwrap();
                assert!(t1 < t2 && t2 < t3, "{p} on {nt}");
            }
        }
    }

    #[test]
    fn fig4_costs_match_paper() {
        let platform = fig1_platform();
        let expected = [('a', 72), ('b', 32), ('c', 40), ('d', 64), ('e', 80)];
        for (v, cost) in expected {
            let (arch, mapping) = fig4_alternative(v);
            assert_eq!(
                arch.cost(&platform).unwrap(),
                Cost::new(cost),
                "variant {v}"
            );
            mapping
                .validate(&fig1_application(), &arch, &fig1_timing())
                .unwrap_or_else(|e| panic!("variant {v}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "unknown Fig. 4 variant")]
    fn fig4_rejects_unknown_variant() {
        let _ = fig4_alternative('z');
    }

    #[test]
    fn fig3_tables() {
        let db = fig3_timing();
        let p1 = ProcessId::new(0);
        let n1 = NodeTypeId::new(0);
        assert_eq!(db.wcet(p1, n1, h(1)).unwrap(), TimeUs::from_ms(80));
        assert_eq!(db.wcet(p1, n1, h(3)).unwrap(), TimeUs::from_ms(160));
        assert_eq!(db.pfail(p1, n1, h(2)).unwrap().value(), 4e-4);
        assert_eq!(
            fig3_platform().node_type(n1).cost(h(3)).unwrap(),
            Cost::new(40)
        );
    }

    #[test]
    fn systems_assemble() {
        let s1 = fig1_system();
        assert_eq!(s1.application().message_count(), 4);
        let s3 = fig3_system();
        assert_eq!(s3.application().process_count(), 1);
        assert_eq!(
            s3.application().process(ProcessId::new(0)).mu(),
            TimeUs::from_ms(20)
        );
    }
}
