//! Error types for model construction and validation.

use std::error::Error;
use std::fmt;

/// Errors raised while building or validating a system model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A probability value was NaN or outside `[0, 1]`.
    InvalidProbability(f64),
    /// A hardening level of `0` was requested (levels are 1-based).
    InvalidHardeningLevel(u8),
    /// An identifier referred to an entity that does not exist.
    UnknownEntity {
        /// The kind of entity ("process", "node type", …).
        kind: &'static str,
        /// The offending dense index.
        index: usize,
    },
    /// A message connects processes belonging to different task graphs.
    CrossGraphEdge {
        /// Source process index.
        src: usize,
        /// Destination process index.
        dst: usize,
    },
    /// A message connects a process to itself.
    SelfLoop {
        /// The process index.
        process: usize,
    },
    /// The same edge was added twice.
    DuplicateEdge {
        /// Source process index.
        src: usize,
        /// Destination process index.
        dst: usize,
    },
    /// The task graph contains a dependency cycle.
    CyclicDependency {
        /// A process on the cycle.
        process: usize,
    },
    /// A time quantity that must be non-negative was negative.
    NegativeTime {
        /// What the quantity was ("WCET", "deadline", …).
        what: &'static str,
    },
    /// A deadline exceeds the application period, which the static cyclic
    /// schedule cannot honour.
    DeadlineExceedsPeriod,
    /// A node type was declared with no h-versions.
    EmptyNodeType {
        /// The node-type index.
        node_type: usize,
    },
    /// A timing table entry is missing for a (process, node type, h) triple.
    MissingTiming {
        /// Process index.
        process: usize,
        /// Node-type index.
        node_type: usize,
        /// Hardening level (1-based).
        h: u8,
    },
    /// An architecture references a hardening level the node type lacks.
    HardeningOutOfRange {
        /// Node-type index.
        node_type: usize,
        /// The requested level (1-based).
        h: u8,
        /// The number of available levels.
        available: u8,
    },
    /// A mapping does not cover every process exactly once.
    IncompleteMapping {
        /// Number of processes expected.
        expected: usize,
        /// Number of assignments provided.
        got: usize,
    },
    /// A mapping assigned a process to a node on which it cannot execute.
    UnmappableProcess {
        /// Process index.
        process: usize,
        /// Node-type index.
        node_type: usize,
    },
    /// The application has no processes.
    EmptyApplication,
    /// The reliability goal γ was not a valid probability in `(0, 1)`.
    InvalidReliabilityGoal(f64),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidProbability(v) => {
                write!(f, "probability {v} is outside [0, 1] or NaN")
            }
            ModelError::InvalidHardeningLevel(h) => {
                write!(f, "hardening level {h} is invalid (levels are 1-based)")
            }
            ModelError::UnknownEntity { kind, index } => {
                write!(f, "unknown {kind} with index {index}")
            }
            ModelError::CrossGraphEdge { src, dst } => write!(
                f,
                "message from process {src} to {dst} crosses task graphs"
            ),
            ModelError::SelfLoop { process } => {
                write!(f, "process {process} has a message to itself")
            }
            ModelError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge from process {src} to {dst}")
            }
            ModelError::CyclicDependency { process } => write!(
                f,
                "task graph contains a dependency cycle through process {process}"
            ),
            ModelError::NegativeTime { what } => write!(f, "{what} must be non-negative"),
            ModelError::DeadlineExceedsPeriod => {
                write!(f, "deadline exceeds the application period")
            }
            ModelError::EmptyNodeType { node_type } => {
                write!(f, "node type {node_type} has no h-versions")
            }
            ModelError::MissingTiming {
                process,
                node_type,
                h,
            } => write!(
                f,
                "missing WCET/failure-probability entry for process {process} on node type {node_type} at h{h}"
            ),
            ModelError::HardeningOutOfRange {
                node_type,
                h,
                available,
            } => write!(
                f,
                "node type {node_type} has {available} h-versions but h{h} was requested"
            ),
            ModelError::IncompleteMapping { expected, got } => write!(
                f,
                "mapping covers {got} processes but the application has {expected}"
            ),
            ModelError::UnmappableProcess { process, node_type } => write!(
                f,
                "process {process} cannot execute on node type {node_type}"
            ),
            ModelError::EmptyApplication => write!(f, "application has no processes"),
            ModelError::InvalidReliabilityGoal(g) => write!(
                f,
                "reliability goal gamma {g} must be a probability in (0, 1)"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            ModelError::InvalidProbability(1.5).to_string(),
            ModelError::InvalidHardeningLevel(0).to_string(),
            ModelError::CrossGraphEdge { src: 1, dst: 2 }.to_string(),
            ModelError::CyclicDependency { process: 3 }.to_string(),
            ModelError::DeadlineExceedsPeriod.to_string(),
            ModelError::MissingTiming {
                process: 0,
                node_type: 1,
                h: 2,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ModelError>();
    }
}
