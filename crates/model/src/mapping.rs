//! Process-to-node mappings.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::application::Application;
use crate::architecture::Architecture;
use crate::error::ModelError;
use crate::ids::{NodeId, ProcessId};
use crate::timing::TimingDb;

/// A total mapping `M: P → N` of processes to architecture node slots
/// (the paper's `{P_i, N_j^h}` pairs, with the hardening level kept in the
/// [`Architecture`]).
///
/// # Examples
///
/// ```
/// use ftes_model::{Mapping, NodeId, ProcessId};
///
/// let mut m = Mapping::all_on(4, NodeId::new(0));
/// m.assign(ProcessId::new(2), NodeId::new(1));
/// assert_eq!(m.node_of(ProcessId::new(2)), NodeId::new(1));
/// assert_eq!(m.processes_on(NodeId::new(0)).count(), 3);
/// ```
#[derive(Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    assignment: Vec<NodeId>,
}

// Manual `Clone` so `clone_from` reuses the destination's allocation (the
// candidate arena rewrites pooled mappings on every executed probe).
impl Clone for Mapping {
    fn clone(&self) -> Self {
        Mapping {
            assignment: self.assignment.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.assignment.clone_from(&source.assignment);
    }
}

impl Mapping {
    /// Creates a mapping from an explicit assignment vector (index =
    /// process index).
    pub fn new(assignment: Vec<NodeId>) -> Self {
        Mapping { assignment }
    }

    /// Maps all `n_processes` processes onto a single node.
    pub fn all_on(n_processes: usize, node: NodeId) -> Self {
        Mapping {
            assignment: vec![node; n_processes],
        }
    }

    /// Number of mapped processes.
    pub fn process_count(&self) -> usize {
        self.assignment.len()
    }

    /// The node executing process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn node_of(&self, p: ProcessId) -> NodeId {
        self.assignment[p.index()]
    }

    /// Re-assigns process `p` to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn assign(&mut self, p: ProcessId, node: NodeId) {
        self.assignment[p.index()] = node;
    }

    /// Iterates over the processes mapped on `node`.
    pub fn processes_on(&self, node: NodeId) -> impl Iterator<Item = ProcessId> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(move |&(_, &n)| n == node)
            .map(|(i, _)| ProcessId::new(i as u32))
    }

    /// The underlying assignment slice.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.assignment
    }

    /// Validates the mapping against an application, architecture and
    /// timing database: every process mapped, every target slot exists, and
    /// every process supported (has timing entries) on its target's node
    /// type.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IncompleteMapping`], [`ModelError::UnknownEntity`]
    /// or [`ModelError::UnmappableProcess`].
    pub fn validate(
        &self,
        app: &Application,
        arch: &Architecture,
        timing: &TimingDb,
    ) -> Result<(), ModelError> {
        if self.assignment.len() != app.process_count() {
            return Err(ModelError::IncompleteMapping {
                expected: app.process_count(),
                got: self.assignment.len(),
            });
        }
        for p in app.process_ids() {
            let n = self.assignment[p.index()];
            if n.index() >= arch.node_count() {
                return Err(ModelError::UnknownEntity {
                    kind: "architecture node",
                    index: n.index(),
                });
            }
            let ty = arch.node_type(n);
            if !timing.supports(p, ty) {
                return Err(ModelError::UnmappableProcess {
                    process: p.index(),
                    node_type: ty.index(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.assignment.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}→{}", ProcessId::new(i as u32), n)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ApplicationBuilder;
    use crate::ids::{HLevel, NodeTypeId};
    use crate::node::{Cost, NodeType, Platform};
    use crate::prob::Prob;
    use crate::time::TimeUs;
    use crate::timing::{ExecSpec, TimingDb};

    fn fixture() -> (Application, Architecture, TimingDb) {
        let mut b = ApplicationBuilder::new("A");
        let g = b.add_graph("G1", TimeUs::from_ms(100));
        let p1 = b.add_process(g, TimeUs::ZERO);
        let p2 = b.add_process(g, TimeUs::ZERO);
        b.add_message(p1, p2, TimeUs::ZERO).unwrap();
        let app = b.build().unwrap();

        let platform = Platform::new(vec![
            NodeType::new("N1", vec![Cost::new(1)], 1.0).unwrap(),
            NodeType::new("N2", vec![Cost::new(1)], 1.0).unwrap(),
        ])
        .unwrap();
        let mut timing = TimingDb::new(2, &platform);
        let spec = ExecSpec::new(TimeUs::from_ms(10), Prob::ZERO).unwrap();
        for p in app.process_ids() {
            timing
                .set(p, NodeTypeId::new(0), HLevel::MIN, spec)
                .unwrap();
        }
        // P2 additionally runs on N2; P1 does not.
        timing
            .set(ProcessId::new(1), NodeTypeId::new(1), HLevel::MIN, spec)
            .unwrap();
        let arch = Architecture::with_min_hardening(&[NodeTypeId::new(0), NodeTypeId::new(1)]);
        (app, arch, timing)
    }

    #[test]
    fn assign_and_query() {
        let mut m = Mapping::all_on(3, NodeId::new(0));
        m.assign(ProcessId::new(1), NodeId::new(2));
        assert_eq!(m.node_of(ProcessId::new(1)), NodeId::new(2));
        assert_eq!(m.process_count(), 3);
        let on0: Vec<_> = m.processes_on(NodeId::new(0)).collect();
        assert_eq!(on0, vec![ProcessId::new(0), ProcessId::new(2)]);
        assert_eq!(m.as_slice().len(), 3);
    }

    #[test]
    fn validate_accepts_good_mapping() {
        let (app, arch, timing) = fixture();
        let mut m = Mapping::all_on(2, NodeId::new(0));
        assert!(m.validate(&app, &arch, &timing).is_ok());
        m.assign(ProcessId::new(1), NodeId::new(1));
        assert!(m.validate(&app, &arch, &timing).is_ok());
    }

    #[test]
    fn validate_rejects_unsupported_process() {
        let (app, arch, timing) = fixture();
        // P1 cannot run on N2.
        let mut m = Mapping::all_on(2, NodeId::new(0));
        m.assign(ProcessId::new(0), NodeId::new(1));
        assert_eq!(
            m.validate(&app, &arch, &timing).unwrap_err(),
            ModelError::UnmappableProcess {
                process: 0,
                node_type: 1
            }
        );
    }

    #[test]
    fn validate_rejects_wrong_length_and_dangling_node() {
        let (app, arch, timing) = fixture();
        let short = Mapping::new(vec![NodeId::new(0)]);
        assert!(matches!(
            short.validate(&app, &arch, &timing).unwrap_err(),
            ModelError::IncompleteMapping {
                expected: 2,
                got: 1
            }
        ));
        let dangling = Mapping::all_on(2, NodeId::new(9));
        assert!(matches!(
            dangling.validate(&app, &arch, &timing).unwrap_err(),
            ModelError::UnknownEntity { .. }
        ));
    }

    #[test]
    fn display_is_compact() {
        let m = Mapping::new(vec![NodeId::new(0), NodeId::new(1)]);
        assert_eq!(m.to_string(), "{P1→n1, P2→n2}");
    }
}
