//! Typed identifiers for the entities of the system model.
//!
//! Every entity (process, task graph, message, node type, architecture node)
//! is identified by a dense index wrapped in a newtype, so that e.g. a
//! [`ProcessId`] can never be confused with a [`NodeId`] (C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from its dense index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// The dense index, usable to address `Vec`-backed tables.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0 + 1)
            }
        }
    };
}

id_type!(
    /// Identifies a process `P_i` within an [`Application`](crate::Application).
    ///
    /// Display is 1-based to match the paper (`P1`, `P2`, …).
    ProcessId,
    "P"
);

id_type!(
    /// Identifies a task graph `G_k` within an application.
    GraphId,
    "G"
);

id_type!(
    /// Identifies a message `m_i` (a data dependency edge).
    MessageId,
    "m"
);

id_type!(
    /// Identifies a *node type* `N_j` in the platform library (the paper's
    /// computation node, available in several h-versions).
    NodeTypeId,
    "N"
);

id_type!(
    /// Identifies a concrete node slot in a selected
    /// [`Architecture`](crate::Architecture).
    NodeId,
    "n"
);

/// A hardening level `h ≥ 1`.
///
/// The paper denotes the h-version of node `N_j` as `N_j^h`, with `h = 1`
/// being the unhardened version. `HLevel` is 1-based like the paper;
/// [`HLevel::index`] converts to a 0-based table index.
///
/// # Examples
///
/// ```
/// use ftes_model::HLevel;
///
/// let h = HLevel::new(2)?;
/// assert_eq!(h.get(), 2);
/// assert_eq!(h.index(), 1);
/// assert_eq!(h.to_string(), "h2");
/// # Ok::<(), ftes_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HLevel(u8);

impl HLevel {
    /// The minimum (unhardened) level, `h = 1`.
    pub const MIN: HLevel = HLevel(1);

    /// Creates a hardening level.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidHardeningLevel`] if `h == 0`.
    pub fn new(h: u8) -> Result<Self, ModelError> {
        if h == 0 {
            return Err(ModelError::InvalidHardeningLevel(h));
        }
        Ok(HLevel(h))
    }

    /// The 1-based level value as used in the paper.
    #[inline]
    pub const fn get(self) -> u8 {
        self.0
    }

    /// The 0-based index for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// The next (more hardened) level.
    #[inline]
    pub const fn up(self) -> HLevel {
        HLevel(self.0 + 1)
    }

    /// The previous (less hardened) level, or `None` at the minimum.
    #[inline]
    pub const fn down(self) -> Option<HLevel> {
        if self.0 > 1 {
            Some(HLevel(self.0 - 1))
        } else {
            None
        }
    }
}

impl Default for HLevel {
    fn default() -> Self {
        HLevel::MIN
    }
}

impl fmt::Display for HLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_one_based() {
        assert_eq!(ProcessId::new(0).to_string(), "P1");
        assert_eq!(GraphId::new(2).to_string(), "G3");
        assert_eq!(MessageId::new(3).to_string(), "m4");
        assert_eq!(NodeTypeId::new(1).to_string(), "N2");
        assert_eq!(NodeId::new(0).to_string(), "n1");
    }

    #[test]
    fn ids_index_round_trip() {
        let p = ProcessId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(usize::from(p), 7);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ProcessId::new(0) < ProcessId::new(1));
        assert_eq!(NodeId::new(4), NodeId::new(4));
    }

    #[test]
    fn hlevel_construction_and_navigation() {
        assert!(HLevel::new(0).is_err());
        let h1 = HLevel::new(1).unwrap();
        assert_eq!(h1, HLevel::MIN);
        assert_eq!(h1, HLevel::default());
        assert_eq!(h1.down(), None);
        let h2 = h1.up();
        assert_eq!(h2.get(), 2);
        assert_eq!(h2.index(), 1);
        assert_eq!(h2.down(), Some(h1));
        assert_eq!(h2.to_string(), "h2");
    }
}
