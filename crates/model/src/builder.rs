//! Builder for [`Application`] values.

use crate::application::{Application, Message, Process, TaskGraph};
use crate::error::ModelError;
use crate::ids::{GraphId, MessageId, ProcessId};
use crate::time::TimeUs;

/// Incrementally constructs an [`Application`], validating on
/// [`build`](ApplicationBuilder::build).
///
/// Processes and messages receive paper-style default names (`P1`, `m1`, …)
/// in creation order; use the `*_named` variants to override.
///
/// # Examples
///
/// Building the diamond-shaped graph of the paper's Fig. 1:
///
/// ```
/// use ftes_model::{ApplicationBuilder, TimeUs};
///
/// let mut b = ApplicationBuilder::new("A");
/// b.set_period(TimeUs::from_ms(360));
/// let g1 = b.add_graph("G1", TimeUs::from_ms(360));
/// let mu = TimeUs::from_ms(15);
/// let p1 = b.add_process(g1, mu);
/// let p2 = b.add_process(g1, mu);
/// let p3 = b.add_process(g1, mu);
/// let p4 = b.add_process(g1, mu);
/// b.add_message(p1, p2, TimeUs::ZERO)?;
/// b.add_message(p1, p3, TimeUs::ZERO)?;
/// b.add_message(p2, p4, TimeUs::ZERO)?;
/// b.add_message(p3, p4, TimeUs::ZERO)?;
/// let app = b.build()?;
/// assert_eq!(app.graph(g1).members().len(), 4);
/// # Ok::<(), ftes_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ApplicationBuilder {
    name: String,
    period: Option<TimeUs>,
    processes: Vec<Process>,
    graphs: Vec<TaskGraph>,
    messages: Vec<Message>,
}

impl ApplicationBuilder {
    /// Starts a new application with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ApplicationBuilder {
            name: name.into(),
            period: None,
            processes: Vec::new(),
            graphs: Vec::new(),
            messages: Vec::new(),
        }
    }

    /// Sets the application period `T`. If unset, [`build`] uses the
    /// maximum graph deadline.
    ///
    /// [`build`]: ApplicationBuilder::build
    pub fn set_period(&mut self, period: TimeUs) -> &mut Self {
        self.period = Some(period);
        self
    }

    /// Adds a task graph with a deadline and returns its id.
    pub fn add_graph(&mut self, name: impl Into<String>, deadline: TimeUs) -> GraphId {
        let id = GraphId::new(self.graphs.len() as u32);
        self.graphs.push(TaskGraph::new(name.into(), deadline));
        id
    }

    /// Adds a process with a default name (`P<index+1>`) to `graph`.
    pub fn add_process(&mut self, graph: GraphId, mu: TimeUs) -> ProcessId {
        let name = format!("P{}", self.processes.len() + 1);
        self.add_process_named(graph, name, mu)
    }

    /// Adds a process with an explicit name to `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `graph` was not returned by this builder's
    /// [`add_graph`](ApplicationBuilder::add_graph).
    pub fn add_process_named(
        &mut self,
        graph: GraphId,
        name: impl Into<String>,
        mu: TimeUs,
    ) -> ProcessId {
        assert!(
            graph.index() < self.graphs.len(),
            "graph {graph} does not belong to this builder"
        );
        let id = ProcessId::new(self.processes.len() as u32);
        self.processes.push(Process::new(name.into(), graph, mu));
        self.graphs[graph.index()].push_member(id);
        id
    }

    /// Adds a message (dependency edge) with a default name (`m<index+1>`).
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is unknown, the edge is a self
    /// loop, crosses task graphs, duplicates an existing edge, or the
    /// transmission time is negative.
    pub fn add_message(
        &mut self,
        src: ProcessId,
        dst: ProcessId,
        tx_time: TimeUs,
    ) -> Result<MessageId, ModelError> {
        let name = format!("m{}", self.messages.len() + 1);
        self.add_message_named(src, dst, name, tx_time)
    }

    /// Adds a message with an explicit name.
    ///
    /// # Errors
    ///
    /// Same as [`add_message`](ApplicationBuilder::add_message).
    pub fn add_message_named(
        &mut self,
        src: ProcessId,
        dst: ProcessId,
        name: impl Into<String>,
        tx_time: TimeUs,
    ) -> Result<MessageId, ModelError> {
        for (kind, p) in [("process", src), ("process", dst)] {
            if p.index() >= self.processes.len() {
                return Err(ModelError::UnknownEntity {
                    kind,
                    index: p.index(),
                });
            }
        }
        if src == dst {
            return Err(ModelError::SelfLoop {
                process: src.index(),
            });
        }
        if self.processes[src.index()].graph() != self.processes[dst.index()].graph() {
            return Err(ModelError::CrossGraphEdge {
                src: src.index(),
                dst: dst.index(),
            });
        }
        if self
            .messages
            .iter()
            .any(|m| m.src() == src && m.dst() == dst)
        {
            return Err(ModelError::DuplicateEdge {
                src: src.index(),
                dst: dst.index(),
            });
        }
        if tx_time.is_negative() {
            return Err(ModelError::NegativeTime {
                what: "message transmission time",
            });
        }
        let id = MessageId::new(self.messages.len() as u32);
        self.messages
            .push(Message::new(name.into(), src, dst, tx_time));
        Ok(id)
    }

    /// Validates the accumulated model and produces the [`Application`].
    ///
    /// # Errors
    ///
    /// Returns an error if the application is empty, any μ or deadline is
    /// negative, a deadline exceeds the period, or a task graph contains a
    /// dependency cycle.
    pub fn build(&self) -> Result<Application, ModelError> {
        if self.processes.is_empty() {
            return Err(ModelError::EmptyApplication);
        }
        for p in &self.processes {
            if p.mu().is_negative() {
                return Err(ModelError::NegativeTime {
                    what: "recovery overhead",
                });
            }
        }
        for g in &self.graphs {
            if g.deadline().is_negative() {
                return Err(ModelError::NegativeTime { what: "deadline" });
            }
        }
        let period = self.period.unwrap_or_else(|| {
            self.graphs
                .iter()
                .map(TaskGraph::deadline)
                .max()
                .unwrap_or(TimeUs::ZERO)
        });
        if period <= TimeUs::ZERO {
            return Err(ModelError::NegativeTime { what: "period" });
        }
        if self.graphs.iter().any(|g| g.deadline() > period) {
            return Err(ModelError::DeadlineExceedsPeriod);
        }

        let n = self.processes.len();
        let mut succ: Vec<Vec<MessageId>> = vec![Vec::new(); n];
        let mut pred: Vec<Vec<MessageId>> = vec![Vec::new(); n];
        for (i, m) in self.messages.iter().enumerate() {
            let id = MessageId::new(i as u32);
            succ[m.src().index()].push(id);
            pred[m.dst().index()].push(id);
        }

        // Kahn's algorithm; ties broken by smallest process index so the
        // order is deterministic.
        let mut indegree: Vec<usize> = pred.iter().map(Vec::len).collect();
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = indegree
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| std::cmp::Reverse(i))
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            topo.push(ProcessId::new(i as u32));
            for &m in &succ[i] {
                let d = self.messages[m.index()].dst().index();
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    ready.push(std::cmp::Reverse(d));
                }
            }
        }
        if topo.len() != n {
            let culprit = indegree
                .iter()
                .position(|&d| d > 0)
                .expect("cycle implies a process with positive residual indegree");
            return Err(ModelError::CyclicDependency { process: culprit });
        }

        Ok(Application::from_parts(
            self.name.clone(),
            period,
            self.processes.clone(),
            self.graphs.clone(),
            self.messages.clone(),
            succ,
            pred,
            topo,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_application() {
        let b = ApplicationBuilder::new("empty");
        assert_eq!(b.build().unwrap_err(), ModelError::EmptyApplication);
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let mut b = ApplicationBuilder::new("A");
        let g = b.add_graph("G1", TimeUs::from_ms(100));
        let p1 = b.add_process(g, TimeUs::ZERO);
        let p2 = b.add_process(g, TimeUs::ZERO);
        assert_eq!(
            b.add_message(p1, p1, TimeUs::ZERO).unwrap_err(),
            ModelError::SelfLoop { process: 0 }
        );
        b.add_message(p1, p2, TimeUs::ZERO).unwrap();
        assert_eq!(
            b.add_message(p1, p2, TimeUs::ZERO).unwrap_err(),
            ModelError::DuplicateEdge { src: 0, dst: 1 }
        );
    }

    #[test]
    fn rejects_cross_graph_edges() {
        let mut b = ApplicationBuilder::new("A");
        let g1 = b.add_graph("G1", TimeUs::from_ms(100));
        let g2 = b.add_graph("G2", TimeUs::from_ms(100));
        let p1 = b.add_process(g1, TimeUs::ZERO);
        let p2 = b.add_process(g2, TimeUs::ZERO);
        assert_eq!(
            b.add_message(p1, p2, TimeUs::ZERO).unwrap_err(),
            ModelError::CrossGraphEdge { src: 0, dst: 1 }
        );
    }

    #[test]
    fn rejects_cycles() {
        let mut b = ApplicationBuilder::new("A");
        let g = b.add_graph("G1", TimeUs::from_ms(100));
        let p1 = b.add_process(g, TimeUs::ZERO);
        let p2 = b.add_process(g, TimeUs::ZERO);
        let p3 = b.add_process(g, TimeUs::ZERO);
        b.add_message(p1, p2, TimeUs::ZERO).unwrap();
        b.add_message(p2, p3, TimeUs::ZERO).unwrap();
        b.add_message(p3, p1, TimeUs::ZERO).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::CyclicDependency { .. }
        ));
    }

    #[test]
    fn rejects_deadline_beyond_period() {
        let mut b = ApplicationBuilder::new("A");
        b.set_period(TimeUs::from_ms(50));
        let g = b.add_graph("G1", TimeUs::from_ms(100));
        b.add_process(g, TimeUs::ZERO);
        assert_eq!(b.build().unwrap_err(), ModelError::DeadlineExceedsPeriod);
    }

    #[test]
    fn rejects_negative_times() {
        let mut b = ApplicationBuilder::new("A");
        let g = b.add_graph("G1", TimeUs::from_ms(100));
        b.add_process(g, TimeUs::from_ms(-1));
        assert_eq!(
            b.build().unwrap_err(),
            ModelError::NegativeTime {
                what: "recovery overhead"
            }
        );
    }

    #[test]
    fn period_defaults_to_max_deadline() {
        let mut b = ApplicationBuilder::new("A");
        let g1 = b.add_graph("G1", TimeUs::from_ms(100));
        let g2 = b.add_graph("G2", TimeUs::from_ms(250));
        b.add_process(g1, TimeUs::ZERO);
        b.add_process(g2, TimeUs::ZERO);
        let app = b.build().unwrap();
        assert_eq!(app.period(), TimeUs::from_ms(250));
    }

    #[test]
    fn unknown_process_in_message_is_reported() {
        let mut b = ApplicationBuilder::new("A");
        let g = b.add_graph("G1", TimeUs::from_ms(100));
        let p1 = b.add_process(g, TimeUs::ZERO);
        let bogus = ProcessId::new(42);
        assert!(matches!(
            b.add_message(p1, bogus, TimeUs::ZERO).unwrap_err(),
            ModelError::UnknownEntity {
                kind: "process",
                ..
            }
        ));
    }

    #[test]
    fn independent_processes_allowed() {
        // Processes without any edges are valid (the generator produces
        // graphs where some processes are independent).
        let mut b = ApplicationBuilder::new("A");
        let g = b.add_graph("G1", TimeUs::from_ms(100));
        for _ in 0..5 {
            b.add_process(g, TimeUs::ZERO);
        }
        let app = b.build().unwrap();
        assert_eq!(app.topological_order().len(), 5);
    }
}
