//! # ftes-model — system model for hardened fault-tolerant embedded systems
//!
//! This crate defines the application and platform model of
//!
//! > V. Izosimov, I. Polian, P. Pop, P. Eles, Z. Peng, *Analysis and
//! > Optimization of Fault-Tolerant Embedded Systems with Hardened
//! > Processors*, DATE 2009.
//!
//! The model consists of:
//!
//! * [`Application`] — a set of directed acyclic task graphs whose nodes
//!   are non-preemptable [`Process`]es exchanging [`Message`]s, with hard
//!   deadlines, a period `T` and per-process recovery overheads μ;
//! * [`Platform`] — a library of [`NodeType`]s, each available in several
//!   hardened *h-versions* with increasing [`Cost`] and decreasing
//!   soft-error rate;
//! * [`TimingDb`] — the `t_ijh` (WCET) and `p_ijh` (failure probability)
//!   tables for every process/node-type/hardening-level combination;
//! * [`Architecture`] and [`Mapping`] — a selected set of node instances
//!   with hardening levels, and the process-to-node assignment;
//! * [`ReliabilityGoal`] — ρ = 1 − γ within a time unit τ;
//! * [`BusSpec`] — the shared communication bus (ideal or TTP-style TDMA);
//! * [`System`] — the bundle handed to analysis and optimization.
//!
//! The [`paper`] module provides ready-made fixtures for the paper's
//! worked examples (Fig. 1, Fig. 3, Fig. 4).
//!
//! ## Example
//!
//! ```
//! use ftes_model::{paper, HLevel, NodeTypeId, ProcessId};
//!
//! let system = paper::fig1_system();
//! let t = system
//!     .timing()
//!     .wcet(ProcessId::new(0), NodeTypeId::new(0), HLevel::new(2)?)?;
//! assert_eq!(t, ftes_model::TimeUs::from_ms(75));
//! # Ok::<(), ftes_model::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod application;
mod architecture;
mod builder;
mod bus;
mod error;
pub mod fasthash;
mod goal;
mod ids;
mod mapping;
mod node;
pub mod paper;
mod prob;
mod system;
mod time;
mod timing;

pub use application::{Application, Message, Process, TaskGraph};
pub use architecture::{Architecture, NodeInstance};
pub use builder::ApplicationBuilder;
pub use bus::{BusModel, BusSpec};
pub use error::ModelError;
pub use goal::ReliabilityGoal;
pub use ids::{GraphId, HLevel, MessageId, NodeId, NodeTypeId, ProcessId};
pub use mapping::Mapping;
pub use node::{Cost, NodeType, Platform};
pub use prob::{log_survival, Prob};
pub use system::System;
pub use time::TimeUs;
pub use timing::{ExecSpec, FlatTiming, TimingDb, TimingSource};
