//! Probability values.
//!
//! Failure probabilities in this library span an enormous dynamic range —
//! from ~4·10⁻² for an unhardened node in a harsh environment (paper Fig. 3)
//! down to 10⁻¹⁰ and below for strongly hardened versions. `f64` covers this
//! comfortably; the newtype enforces the `[0, 1]` invariant at construction.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// A probability in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use ftes_model::Prob;
///
/// let p = Prob::new(1.2e-5)?;
/// assert_eq!(p.value(), 1.2e-5);
/// assert!((p.complement().value() - (1.0 - 1.2e-5)).abs() < 1e-15);
/// # Ok::<(), ftes_model::ModelError>(())
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Prob(f64);

impl Prob {
    /// Probability zero (an impossible event).
    pub const ZERO: Prob = Prob(0.0);
    /// Probability one (a certain event).
    pub const ONE: Prob = Prob(1.0);

    /// Creates a probability, validating that the value lies in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidProbability`] if `value` is NaN or lies
    /// outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            return Err(ModelError::InvalidProbability(value));
        }
        Ok(Prob(value))
    }

    /// Creates a probability, clamping the value into `[0, 1]`.
    ///
    /// Useful at the end of floating-point pipelines where tiny negative
    /// results (−1e−18 instead of 0) are numerically expected.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn clamped(value: f64) -> Self {
        assert!(!value.is_nan(), "probability must not be NaN");
        Prob(value.clamp(0.0, 1.0))
    }

    /// The underlying `f64` value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// `1 − p`, the probability of the complementary event.
    #[inline]
    pub fn complement(self) -> Prob {
        Prob(1.0 - self.0)
    }

    /// `true` if this probability is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Product of two probabilities (independent conjunction).
    #[inline]
    pub fn and(self, other: Prob) -> Prob {
        Prob(self.0 * other.0)
    }

    /// `1 − (1−a)(1−b)`: probability that at least one of two independent
    /// events occurs. This is the union used by the paper's formula (5).
    #[inline]
    pub fn or_independent(self, other: Prob) -> Prob {
        Prob(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }
}

/// Log-survival of a failure probability: `ln(1 − q)` evaluated as
/// `ln_1p(−q)` after clamping `q` into `[0, 1]` against floating-point
/// noise at the end of rounding pipelines.
///
/// This is the per-node term of the paper's formula (5) union evaluated in
/// the log domain (`Pr(∪) = −expm1(Σ ln(1 − q_j))`), where tiny per-node
/// probabilities (10⁻¹⁰ and below) would cancel against 1.0 in the direct
/// product. Centralized here so every caller — the from-scratch union, the
/// incremental SFP series cache — runs the *identical* floating-point
/// expression: bit-for-bit equality between those paths is load-bearing
/// for the differential test suites.
///
/// Boundary behavior: `log_survival(0.0) == 0.0` (certain survival),
/// `log_survival(1.0) == f64::NEG_INFINITY` (certain failure), and
/// subnormal `q` maps to `-q` exactly (`ln_1p` is exact to one ulp there).
#[inline]
pub fn log_survival(q: f64) -> f64 {
    (-q.clamp(0.0, 1.0)).ln_1p()
}

impl From<Prob> for f64 {
    fn from(p: Prob) -> f64 {
        p.0
    }
}

impl TryFrom<f64> for Prob {
    type Error = ModelError;
    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Prob::new(value)
    }
}

impl fmt::Display for Prob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 != 0.0 && self.0 < 1e-3 {
            write!(f, "{:e}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_range() {
        assert!(Prob::new(0.0).is_ok());
        assert!(Prob::new(1.0).is_ok());
        assert!(Prob::new(1.2e-5).is_ok());
        assert!(Prob::new(-1e-30).is_err());
        assert!(Prob::new(1.0 + 1e-12).is_err());
        assert!(Prob::new(f64::NAN).is_err());
    }

    #[test]
    fn clamped_fixes_numeric_noise() {
        assert_eq!(Prob::clamped(-1e-18), Prob::ZERO);
        assert_eq!(Prob::clamped(1.0 + 1e-15), Prob::ONE);
        assert_eq!(Prob::clamped(0.5).value(), 0.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn clamped_rejects_nan() {
        let _ = Prob::clamped(f64::NAN);
    }

    #[test]
    fn complement_and_combinators() {
        let p = Prob::new(0.25).unwrap();
        let q = Prob::new(0.5).unwrap();
        assert_eq!(p.complement().value(), 0.75);
        assert_eq!(p.and(q).value(), 0.125);
        // 1 - 0.75*0.5 = 0.625
        assert_eq!(p.or_independent(q).value(), 0.625);
        assert!(Prob::ZERO.is_zero());
        assert!(!p.is_zero());
    }

    #[test]
    fn union_matches_paper_a2() {
        // Appendix A.2: union of two node failure probabilities
        // 0.000024999844 each gives 0.00004999907 (to the paper's 11 digits).
        let p = Prob::new(0.000024999844).unwrap();
        let u = p.or_independent(p);
        assert!((u.value() - 0.00004999907).abs() < 5e-11);
    }

    #[test]
    fn display_uses_scientific_notation_for_small_values() {
        assert_eq!(Prob::new(1.2e-5).unwrap().to_string(), "1.2e-5");
        assert_eq!(Prob::new(0.5).unwrap().to_string(), "0.5");
        assert_eq!(Prob::ZERO.to_string(), "0");
    }

    #[test]
    fn log_survival_is_bit_identical_to_open_coded_expression() {
        // The exact expression previously duplicated across the SFP crates;
        // the helper must reproduce it bit for bit on every input class —
        // boundaries, subnormals, out-of-range noise.
        let cases = [
            0.0,
            -0.0,
            1.0,
            f64::MIN_POSITIVE,       // smallest normal
            f64::MIN_POSITIVE / 2.0, // subnormal
            5e-324,                  // smallest subnormal
            1.2e-5,
            4.8e-10,
            0.5,
            1.0 - f64::EPSILON,
            -1e-18,      // clamps to 0
            1.0 + 1e-15, // clamps to 1
        ];
        for q in cases {
            let reference = (-q.clamp(0.0, 1.0)).ln_1p();
            assert_eq!(log_survival(q).to_bits(), reference.to_bits(), "q = {q:e}");
        }
    }

    #[test]
    fn log_survival_boundary_values() {
        assert_eq!(log_survival(0.0), 0.0);
        assert_eq!(log_survival(1.0), f64::NEG_INFINITY);
        assert_eq!(log_survival(-1e-18), 0.0, "negative noise clamps to 0");
        assert_eq!(
            log_survival(1.0 + 1e-15),
            f64::NEG_INFINITY,
            "overshoot clamps to 1"
        );
        // Subnormal q: ln(1 − q) ≈ −q to one ulp; must stay finite and ≤ 0.
        let sub = f64::MIN_POSITIVE / 4.0;
        assert_eq!(log_survival(sub), -sub);
    }

    #[test]
    fn serde_round_trip_via_f64() {
        let p = Prob::new(0.125).unwrap();
        let as_f64: f64 = p.into();
        assert_eq!(Prob::try_from(as_f64).unwrap(), p);
        assert!(Prob::try_from(1.5f64).is_err());
    }
}
