//! Reliability goals.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::time::TimeUs;

/// The reliability goal ρ = 1 − γ within a time unit τ.
///
/// γ is the maximum acceptable probability of a system failure caused by
/// transient faults on any computation node within τ (one hour in the
/// paper).
///
/// Because ρ is extremely close to 1, the goal is stored as γ and
/// comparisons use `ln(ρ) = ln1p(−γ)` to avoid catastrophic cancellation.
///
/// # Examples
///
/// ```
/// use ftes_model::{ReliabilityGoal, TimeUs};
///
/// // The paper's running example: ρ = 1 − 10⁻⁵ within one hour.
/// let goal = ReliabilityGoal::per_hour(1e-5)?;
/// assert_eq!(goal.gamma(), 1e-5);
/// assert_eq!(goal.time_unit(), TimeUs::HOUR);
/// assert!((goal.rho() - (1.0 - 1e-5)).abs() < 1e-15);
/// # Ok::<(), ftes_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityGoal {
    gamma: f64,
    time_unit: TimeUs,
}

impl ReliabilityGoal {
    /// Creates a goal with failure budget `gamma` per `time_unit`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidReliabilityGoal`] unless
    /// `0 < gamma < 1`, and [`ModelError::NegativeTime`] unless the time
    /// unit is positive.
    pub fn new(gamma: f64, time_unit: TimeUs) -> Result<Self, ModelError> {
        if !(gamma > 0.0 && gamma < 1.0) {
            return Err(ModelError::InvalidReliabilityGoal(gamma));
        }
        if time_unit <= TimeUs::ZERO {
            return Err(ModelError::NegativeTime { what: "time unit" });
        }
        Ok(ReliabilityGoal { gamma, time_unit })
    }

    /// Creates a goal per hour of operation, the paper's convention.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidReliabilityGoal`] unless `0 < gamma < 1`.
    pub fn per_hour(gamma: f64) -> Result<Self, ModelError> {
        Self::new(gamma, TimeUs::HOUR)
    }

    /// The failure budget γ per time unit.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The reliability goal ρ = 1 − γ.
    pub fn rho(&self) -> f64 {
        1.0 - self.gamma
    }

    /// `ln(ρ)` computed without cancellation.
    pub fn ln_rho(&self) -> f64 {
        (-self.gamma).ln_1p()
    }

    /// The time unit τ.
    pub fn time_unit(&self) -> TimeUs {
        self.time_unit
    }

    /// The exponent τ/T of formula (6) for an application of period
    /// `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not strictly positive.
    pub fn iterations(&self, period: TimeUs) -> f64 {
        self.time_unit.div_periods(period)
    }

    /// Checks formula (6): does a per-iteration system failure probability
    /// `p_fail_iter` satisfy `(1 − p)^(τ/T) ≥ ρ`?
    ///
    /// Evaluated in the log domain: `(τ/T)·ln1p(−p) ≥ ln(ρ)`.
    pub fn is_met(&self, p_fail_iter: f64, period: TimeUs) -> bool {
        Self::is_met_hoisted(self.iterations(period), self.ln_rho(), p_fail_iter)
    }

    /// The [`is_met`](ReliabilityGoal::is_met) comparison with the
    /// period-constant factors (`iterations(period)`, `ln_rho()`)
    /// hoisted out — hot loops that test many probabilities against one
    /// goal compute them once. Bit-identical to
    /// [`is_met`](ReliabilityGoal::is_met) (same operations on the same
    /// values, just not re-derived per call).
    pub fn is_met_hoisted(n_iterations: f64, ln_rho: f64, p_fail_iter: f64) -> bool {
        if p_fail_iter >= 1.0 {
            return false;
        }
        n_iterations * (-p_fail_iter).ln_1p() >= ln_rho
    }

    /// The maximum tolerable per-iteration failure probability for an
    /// application of the given period: the largest `p` with
    /// `(1 − p)^(τ/T) ≥ ρ`.
    pub fn max_p_fail_per_iteration(&self, period: TimeUs) -> f64 {
        // (1-p)^N >= 1-gamma  <=>  p <= 1 - (1-gamma)^(1/N)
        let n = self.iterations(period);
        -f64::exp_m1(self.ln_rho() / n)
    }
}

impl fmt::Display for ReliabilityGoal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "1 - {:e} per {}", self.gamma, self.time_unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(ReliabilityGoal::per_hour(1e-5).is_ok());
        assert!(ReliabilityGoal::per_hour(0.0).is_err());
        assert!(ReliabilityGoal::per_hour(1.0).is_err());
        assert!(ReliabilityGoal::per_hour(-0.5).is_err());
        assert!(ReliabilityGoal::new(1e-5, TimeUs::ZERO).is_err());
    }

    #[test]
    fn appendix_a2_goal_check() {
        // A.2: with k1 = k2 = 1 the per-iteration failure probability is
        // 9.6e-10; over 10 000 iterations of 360 ms the system reliability
        // is 0.99999040004 >= 1 - 1e-5, so the goal is met.
        let goal = ReliabilityGoal::per_hour(1e-5).unwrap();
        let period = TimeUs::from_ms(360);
        assert!(goal.is_met(9.6e-10, period));
        // Without re-executions the failure probability is 4.999907e-5 and
        // the reliability drops to 0.6065 — goal missed.
        assert!(!goal.is_met(0.00004999907, period));
    }

    #[test]
    fn max_p_fail_inverts_is_met() {
        let goal = ReliabilityGoal::per_hour(1e-5).unwrap();
        let period = TimeUs::from_ms(360);
        let pmax = goal.max_p_fail_per_iteration(period);
        assert!(pmax > 0.0 && pmax < 1e-8);
        assert!(goal.is_met(pmax * 0.999, period));
        assert!(!goal.is_met(pmax * 1.001, period));
    }

    #[test]
    fn certain_failure_never_meets_goal() {
        let goal = ReliabilityGoal::per_hour(1e-5).unwrap();
        assert!(!goal.is_met(1.0, TimeUs::from_ms(100)));
        assert!(goal.is_met(0.0, TimeUs::from_ms(100)));
    }

    #[test]
    fn iterations_per_hour() {
        let goal = ReliabilityGoal::per_hour(1e-5).unwrap();
        assert_eq!(goal.iterations(TimeUs::from_ms(360)), 10_000.0);
        assert_eq!(goal.iterations(TimeUs::from_ms(300)), 12_000.0);
    }

    #[test]
    fn display_mentions_gamma_and_unit() {
        let goal = ReliabilityGoal::per_hour(1.2e-5).unwrap();
        let s = goal.to_string();
        assert!(s.contains("1.2e-5"), "{s}");
    }
}
