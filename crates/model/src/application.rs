//! Applications: sets of directed acyclic task graphs.
//!
//! The paper models an application `A` as a set of directed acyclic graphs
//! `G_k(V_k, E_k)`. Each node `P_i ∈ V_k` is a *process*; an edge `e_ij`
//! carries a *message* from `P_i` to `P_j`. A process activates once all its
//! inputs have arrived, runs non-preemptively, and emits its outputs on
//! termination.

use serde::{Deserialize, Serialize};

use crate::ids::{GraphId, MessageId, ProcessId};
use crate::time::TimeUs;

/// A process `P_i`: one non-preemptable unit of computation.
///
/// WCETs and failure probabilities are *not* stored here — they depend on
/// the executing node and hardening level and live in the
/// [`TimingDb`](crate::TimingDb).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Process {
    name: String,
    graph: GraphId,
    /// Recovery overhead μ paid before each re-execution of this process.
    mu: TimeUs,
}

impl Process {
    pub(crate) fn new(name: String, graph: GraphId, mu: TimeUs) -> Self {
        Process { name, graph, mu }
    }

    /// The human-readable name (`"P1"` by default).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task graph this process belongs to.
    pub fn graph(&self) -> GraphId {
        self.graph
    }

    /// The recovery overhead μ of this process.
    ///
    /// The paper uses a global μ in the motivational examples (15 ms in
    /// Fig. 1) and a per-process μ of 1–10 % of the WCET in the experimental
    /// evaluation, so the model stores it per process.
    pub fn mu(&self) -> TimeUs {
        self.mu
    }
}

/// A message `m`: a data dependency edge between two processes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    name: String,
    src: ProcessId,
    dst: ProcessId,
    /// Worst-case transmission time if sent over the bus. Messages between
    /// processes mapped on the same node take zero time.
    tx_time: TimeUs,
}

impl Message {
    pub(crate) fn new(name: String, src: ProcessId, dst: ProcessId, tx_time: TimeUs) -> Self {
        Message {
            name,
            src,
            dst,
            tx_time,
        }
    }

    /// The human-readable name (`"m1"` by default).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The producing process.
    pub fn src(&self) -> ProcessId {
        self.src
    }

    /// The consuming process.
    pub fn dst(&self) -> ProcessId {
        self.dst
    }

    /// Worst-case bus transmission time of this message.
    pub fn tx_time(&self) -> TimeUs {
        self.tx_time
    }
}

/// A task graph `G_k` with its deadline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    deadline: TimeUs,
    members: Vec<ProcessId>,
}

impl TaskGraph {
    pub(crate) fn new(name: String, deadline: TimeUs) -> Self {
        TaskGraph {
            name,
            deadline,
            members: Vec::new(),
        }
    }

    pub(crate) fn push_member(&mut self, p: ProcessId) {
        self.members.push(p);
    }

    /// The human-readable name (`"G1"` by default).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The hard deadline `D` by which every process of this graph must have
    /// completed (including worst-case recovery slack).
    pub fn deadline(&self) -> TimeUs {
        self.deadline
    }

    /// The processes belonging to this graph.
    pub fn members(&self) -> &[ProcessId] {
        &self.members
    }
}

/// An application `A`: a set of task graphs plus the shared period.
///
/// Construct with [`ApplicationBuilder`](crate::ApplicationBuilder); the
/// builder validates acyclicity, graph membership of edges and timing sanity
/// and precomputes adjacency and a topological order.
///
/// # Examples
///
/// ```
/// use ftes_model::{ApplicationBuilder, TimeUs};
///
/// let mut b = ApplicationBuilder::new("A");
/// b.set_period(TimeUs::from_ms(360));
/// let g = b.add_graph("G1", TimeUs::from_ms(360));
/// let p1 = b.add_process(g, TimeUs::from_ms(15));
/// let p2 = b.add_process(g, TimeUs::from_ms(15));
/// b.add_message(p1, p2, TimeUs::ZERO)?;
/// let app = b.build()?;
/// assert_eq!(app.process_count(), 2);
/// assert_eq!(app.successors(p1).count(), 1);
/// # Ok::<(), ftes_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    name: String,
    period: TimeUs,
    processes: Vec<Process>,
    graphs: Vec<TaskGraph>,
    messages: Vec<Message>,
    /// Outgoing message ids per process.
    succ: Vec<Vec<MessageId>>,
    /// Incoming message ids per process.
    pred: Vec<Vec<MessageId>>,
    /// A topological order over all processes (graphs interleaved).
    topo: Vec<ProcessId>,
}

impl Application {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: String,
        period: TimeUs,
        processes: Vec<Process>,
        graphs: Vec<TaskGraph>,
        messages: Vec<Message>,
        succ: Vec<Vec<MessageId>>,
        pred: Vec<Vec<MessageId>>,
        topo: Vec<ProcessId>,
    ) -> Self {
        Application {
            name,
            period,
            processes,
            graphs,
            messages,
            succ,
            pred,
            topo,
        }
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The period `T` — one iteration of the application executes every `T`.
    /// Formula (6) of the paper raises the per-iteration success probability
    /// to the power τ/T.
    pub fn period(&self) -> TimeUs {
        self.period
    }

    /// Number of processes over all task graphs.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Number of messages (edges) over all task graphs.
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }

    /// Number of task graphs.
    pub fn graph_count(&self) -> usize {
        self.graphs.len()
    }

    /// Looks up a process.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids are only handed out by the
    /// builder, so this indicates misuse of ids across applications).
    pub fn process(&self, id: ProcessId) -> &Process {
        &self.processes[id.index()]
    }

    /// Looks up a message.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn message(&self, id: MessageId) -> &Message {
        &self.messages[id.index()]
    }

    /// Looks up a task graph.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn graph(&self, id: GraphId) -> &TaskGraph {
        &self.graphs[id.index()]
    }

    /// Iterates over all process ids in index order.
    pub fn process_ids(&self) -> impl ExactSizeIterator<Item = ProcessId> + '_ {
        (0..self.processes.len() as u32).map(ProcessId::new)
    }

    /// Iterates over all message ids in index order.
    pub fn message_ids(&self) -> impl ExactSizeIterator<Item = MessageId> + '_ {
        (0..self.messages.len() as u32).map(MessageId::new)
    }

    /// Iterates over all graph ids in index order.
    pub fn graph_ids(&self) -> impl ExactSizeIterator<Item = GraphId> + '_ {
        (0..self.graphs.len() as u32).map(GraphId::new)
    }

    /// Outgoing messages of `p`.
    pub fn outgoing(&self, p: ProcessId) -> &[MessageId] {
        &self.succ[p.index()]
    }

    /// Incoming messages of `p`.
    pub fn incoming(&self, p: ProcessId) -> &[MessageId] {
        &self.pred[p.index()]
    }

    /// Direct successors of `p` in its task graph.
    pub fn successors(&self, p: ProcessId) -> impl Iterator<Item = ProcessId> + '_ {
        self.succ[p.index()]
            .iter()
            .map(|&m| self.messages[m.index()].dst())
    }

    /// Direct predecessors of `p` in its task graph.
    pub fn predecessors(&self, p: ProcessId) -> impl Iterator<Item = ProcessId> + '_ {
        self.pred[p.index()]
            .iter()
            .map(|&m| self.messages[m.index()].src())
    }

    /// `true` if `p` has no predecessors (an input/root process).
    pub fn is_root(&self, p: ProcessId) -> bool {
        self.pred[p.index()].is_empty()
    }

    /// `true` if `p` has no successors (an output/sink process).
    pub fn is_sink(&self, p: ProcessId) -> bool {
        self.succ[p.index()].is_empty()
    }

    /// A topological order over all processes (roots first). Stable across
    /// runs: ties are broken by process index.
    pub fn topological_order(&self) -> &[ProcessId] {
        &self.topo
    }

    /// The deadline of the graph `p` belongs to.
    pub fn deadline_of(&self, p: ProcessId) -> TimeUs {
        self.graphs[self.processes[p.index()].graph.index()].deadline()
    }

    /// The tightest deadline over all task graphs.
    pub fn min_deadline(&self) -> TimeUs {
        self.graphs
            .iter()
            .map(TaskGraph::deadline)
            .min()
            .expect("applications always have at least one graph")
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ApplicationBuilder;
    use crate::time::TimeUs;

    fn diamond() -> crate::Application {
        let mut b = ApplicationBuilder::new("A");
        b.set_period(TimeUs::from_ms(360));
        let g = b.add_graph("G1", TimeUs::from_ms(360));
        let p1 = b.add_process(g, TimeUs::from_ms(15));
        let p2 = b.add_process(g, TimeUs::from_ms(15));
        let p3 = b.add_process(g, TimeUs::from_ms(15));
        let p4 = b.add_process(g, TimeUs::from_ms(15));
        b.add_message(p1, p2, TimeUs::ZERO).unwrap();
        b.add_message(p1, p3, TimeUs::ZERO).unwrap();
        b.add_message(p2, p4, TimeUs::ZERO).unwrap();
        b.add_message(p3, p4, TimeUs::ZERO).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn diamond_structure() {
        use crate::ids::ProcessId;
        let app = diamond();
        let p = |i| ProcessId::new(i);
        assert_eq!(app.process_count(), 4);
        assert_eq!(app.message_count(), 4);
        assert!(app.is_root(p(0)));
        assert!(app.is_sink(p(3)));
        assert!(!app.is_root(p(1)));
        assert!(!app.is_sink(p(0)));
        let succs: Vec<_> = app.successors(p(0)).collect();
        assert_eq!(succs, vec![p(1), p(2)]);
        let preds: Vec<_> = app.predecessors(p(3)).collect();
        assert_eq!(preds, vec![p(1), p(2)]);
    }

    #[test]
    fn topological_order_respects_edges() {
        let app = diamond();
        let topo = app.topological_order();
        assert_eq!(topo.len(), 4);
        let pos = |p: crate::ProcessId| topo.iter().position(|&q| q == p).unwrap();
        for m in app.message_ids() {
            let msg = app.message(m);
            assert!(pos(msg.src()) < pos(msg.dst()), "{m} violates topo order");
        }
    }

    #[test]
    fn deadlines_and_period() {
        let app = diamond();
        assert_eq!(app.period(), TimeUs::from_ms(360));
        assert_eq!(app.min_deadline(), TimeUs::from_ms(360));
        assert_eq!(
            app.deadline_of(crate::ProcessId::new(2)),
            TimeUs::from_ms(360)
        );
    }

    #[test]
    fn names_default_to_paper_style() {
        let app = diamond();
        assert_eq!(app.process(crate::ProcessId::new(0)).name(), "P1");
        assert_eq!(app.message(crate::MessageId::new(3)).name(), "m4");
        assert_eq!(app.graph(crate::GraphId::new(0)).name(), "G1");
    }
}
