//! Offline shim for `rand_chacha`.
//!
//! The build container has no access to crates.io, so the workspace ships
//! minimal local stand-ins for its external dependencies (see
//! `crates/compat/README.md`). [`ChaCha8Rng`] generates its stream with a
//! genuine ChaCha8 block function (RFC 8439 layout, 8 rounds, 64-bit block
//! counter), so it has the statistical quality the fault-injection and
//! benchmark-generation code assumes. Word-extraction order differs from
//! upstream `rand_chacha`, so streams are deterministic per seed but not
//! bit-compatible with upstream; nothing in the workspace depends on
//! upstream streams.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
/// "expand 32-byte k" — the standard ChaCha constants.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(input: &[u32; 16]) -> [u32; 16] {
    let mut state = *input;
    for _ in 0..CHACHA_ROUNDS / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(input) {
        *s = s.wrapping_add(*i);
    }
    state
}

/// A ChaCha stream cipher with 8 rounds, used as a deterministic,
/// seedable random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 64-bit counter, 64-bit nonce.
    input: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unconsumed word in `buffer` (16 = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        self.buffer = chacha_block(&self.input);
        self.index = 0;
        // Advance the 64-bit block counter (words 12..14, little-endian).
        let counter = (u64::from(self.input[13]) << 32 | u64::from(self.input[12])).wrapping_add(1);
        self.input[12] = counter as u32;
        self.input[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&SIGMA);
        for (word, chunk) in input[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            input,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_continues_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        // 40 words spans three 16-word blocks; all blocks must differ.
        assert_ne!(&first[0..16], &first[16..32]);
    }

    #[test]
    fn zero_seed_block_matches_chacha_structure() {
        // The raw block function must be a permutation-plus-feedforward:
        // changing the counter changes the block.
        let mut rng = ChaCha8Rng::from_seed([0; 32]);
        let a = rng.next_u32();
        let mut rng2 = ChaCha8Rng::from_seed([0; 32]);
        assert_eq!(a, rng2.next_u32());
    }

    #[test]
    fn rough_uniformity_of_unit_doubles() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
