//! Offline shim for `criterion`.
//!
//! The build container has no access to crates.io, so the workspace ships
//! minimal local stand-ins for its external dependencies (see
//! `crates/compat/README.md`). This shim keeps criterion's API shape —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], [`criterion_group!`]/[`criterion_main!`] — so the six
//! benches compile unchanged, and measures wall-clock medians with a plain
//! `Instant`-based sampler (no statistics, no HTML reports). `cargo bench`
//! prints one `name  time: [median]  (n samples × m iters)` line per
//! benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier — defers to `std::hint::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("dp", 40)` → `dp/40`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration times, one per sample.
    times: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration wall time.
    ///
    /// Each of the configured samples times a small batch sized so a batch
    /// takes ≳1 ms, keeping clock granularity out of the numbers while
    /// bounding total runtime for fast routines.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration.
        let calibration_start = Instant::now();
        black_box(routine());
        let once = calibration_start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        self.times.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.times.push(start.elapsed() / batch as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.times.is_empty() {
            println!("{id:<50} (no measurement — closure never called iter)");
            return;
        }
        let mut sorted = self.times.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        println!(
            "{id:<50} time: [{median:>12?}]  ({} samples)",
            self.times.len()
        );
    }
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Far fewer samples than real criterion's 100: the shim's goal is a
        // usable relative number, not statistical rigor. `cargo bench ...
        // -- --test` asks for a smoke run (real criterion executes each
        // benchmark once without measuring); the shim honors it by
        // collapsing every benchmark to a single sample, overriding
        // per-group sample sizes.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: if test_mode { 1 } else { 20 },
            test_mode,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _criterion: self,
            name: group_name.to_owned(),
            sample_size,
            test_mode,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        times: Vec::new(),
    };
    f(&mut bencher);
    bencher.report(id);
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benchmarks in this group
    /// (ignored in `--test` smoke mode, which pins one sample).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        if !self.test_mode {
            self.sample_size = n;
        }
        self
    }

    /// Runs a benchmark named `group/id`.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, f);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
        T: ?Sized,
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints eagerly).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runner callable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a shim that
            // parsed them would add nothing, so they are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: 5,
            times: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            black_box(count)
        });
        assert_eq!(b.times.len(), 5);
        assert!(count > 5, "batching should run the routine repeatedly");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dp", 40).id, "dp/40");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("f", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
