//! Offline shim for `serde_derive`.
//!
//! The build container has no access to crates.io, so the workspace ships
//! minimal local stand-ins for its external dependencies (see
//! `crates/compat/README.md`). The real derives generate
//! `Serialize`/`Deserialize` impls; here the traits are blanket-implemented
//! marker traits (see the sibling `serde` shim), so the derives expand to
//! nothing. `attributes(serde)` keeps `#[serde(...)]` helper attributes
//! accepted on deriving types.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: the shim's `Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: the shim's `Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
