//! Offline shim for `rand` (0.8-compatible subset).
//!
//! The build container has no access to crates.io, so the workspace ships
//! minimal local stand-ins for its external dependencies (see
//! `crates/compat/README.md`). This shim provides the subset the workspace
//! uses: [`RngCore`], [`SeedableRng`] (with the splitmix64-based
//! `seed_from_u64` expansion), the [`Rng`] extension trait
//! (`gen_range`/`gen_bool`/`gen`) and `distributions::{Distribution,
//! Uniform}`. Streams are deterministic per seed but are NOT bit-compatible
//! with upstream `rand`; nothing in the workspace depends on upstream
//! streams.

/// Core random-number-generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed
/// (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it over the full seed
    /// with splitmix64 (as upstream `rand` does).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Convenience extension over [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value in the given range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool needs a probability, got {p}"
        );
        unit_f64(self) < p
    }

    /// A uniform value of a [`Standard`](distributions::Standard)-sampled type.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform f64 in `[0, 1)` from the top 53 bits of one `next_u64`.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Distributions (subset of `rand::distributions`).
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// Types that produce values of `T` given a generator.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type (subset: `f64` in `[0,1)`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    /// Uniform distribution over a half-open or inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
        inclusive: bool,
    }

    impl<T: uniform::SampleUniform + PartialOrd + Copy> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            assert!(low <= high, "Uniform::new_inclusive requires low <= high");
            Uniform {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<T: uniform::SampleUniform + Copy> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_uniform(self.low, self.high, self.inclusive, rng)
        }
    }

    /// Uniform-sampling machinery (subset of `rand::distributions::uniform`).
    pub mod uniform {
        use super::super::{unit_f64, RngCore};
        use std::ops::{Range, RangeInclusive};

        /// Types that can be sampled uniformly from a range.
        pub trait SampleUniform: Sized {
            /// Uniform value in `[low, high)` (or `[low, high]` if `inclusive`).
            fn sample_uniform<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self;
        }

        macro_rules! impl_sample_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        inclusive: bool,
                        rng: &mut R,
                    ) -> Self {
                        let lo = low as i128;
                        let hi = high as i128 + if inclusive { 1 } else { 0 };
                        let span = hi - lo;
                        assert!(span > 0, "cannot sample from empty range");
                        // Modulo bias is ≤ span/2^64 — irrelevant for the
                        // synthetic-benchmark spans used here.
                        let off = (rng.next_u64() as i128) % span;
                        (lo + off) as $t
                    }
                }
            )*};
        }
        impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_sample_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        low: Self,
                        high: Self,
                        _inclusive: bool,
                        rng: &mut R,
                    ) -> Self {
                        assert!(low <= high, "cannot sample from empty range");
                        let u = unit_f64(rng) as $t;
                        low + (high - low) * u
                    }
                }
            )*};
        }
        impl_sample_uniform_float!(f32, f64);

        /// Range arguments accepted by [`Rng::gen_range`](crate::Rng::gen_range).
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_uniform(self.start, self.end, false, rng)
            }
        }

        impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_uniform(*self.start(), *self.end(), true, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // splitmix64 step: decorrelates the sequential counter.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let mut rng = Counter(42);
        let u = Uniform::new(f64::MIN_POSITIVE, 1.0);
        for _ in 0..1000 {
            let v = u.sample(&mut rng);
            assert!((f64::MIN_POSITIVE..1.0 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_fills_every_byte_length() {
        for len in 0..20 {
            let mut rng = Counter(5);
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }
}
