//! Offline shim for `serde`.
//!
//! The build container has no access to crates.io, so the workspace ships
//! minimal local stand-ins for its external dependencies (see
//! `crates/compat/README.md`). No code in this workspace *calls* a
//! serializer yet — the model types only derive the traits so downstream
//! users can serialize them — so the shim reduces `Serialize`/`Deserialize`
//! to blanket-implemented marker traits and the derives to no-ops. Swapping
//! the real serde back in is a one-line change in the root manifest's
//! `[workspace.dependencies]`.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T> DeserializeOwned for T {}

/// Stand-in for the `serde::de` module.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module.
pub mod ser {
    pub use crate::Serialize;
}

pub use serde_derive::{Deserialize, Serialize};
