//! Test configuration and the deterministic RNG behind the shim's runner.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        // Upstream's default; keeps coverage comparable.
        Config { cases: 256 }
    }
}

impl Config {
    /// A config running `cases` cases, otherwise default.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// Deterministic generator: seeded from the test name, so every `cargo
/// test` run replays the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: ChaCha8Rng,
}

impl TestRng {
    /// Creates the RNG for a named test.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            rng: ChaCha8Rng::seed_from_u64(hash),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample below 0");
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
