//! Generate-only strategies (no shrinking).
//!
//! A [`Strategy`] here is just "a recipe that draws a value from a
//! [`TestRng`]": ranges draw uniformly, tuples draw element-wise, and the
//! `prop_map`/`prop_flat_map` combinators compose recipes. Upstream
//! proptest additionally builds a shrink tree; the shim trades that for
//! zero dependencies.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type. `Debug + Clone` so the runner can report and
    /// replay failing inputs.
    type Value: Debug + Clone;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug + Clone,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, flat_map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            inner: self,
            flat_map,
        }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug + Clone,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    flat_map: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.flat_map)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: std::rc::Rc::clone(&self.inner),
        }
    }
}

impl<T: Debug + Clone> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Uniform choice among several strategies of one value type.
#[derive(Debug, Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug + Clone> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "cannot generate from empty range");
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128 + 1;
                assert!(lo < hi, "cannot generate from empty range");
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo)) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from empty range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot generate from empty range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
