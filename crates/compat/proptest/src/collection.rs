//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// An inclusive-exclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.lo < self.hi, "cannot generate from empty size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        SizeRange {
            lo: range.start,
            hi: range.end,
        }
    }
}

/// A strategy yielding `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec(element, 3)` / `vec(element, 0..5)` — a vector strategy with the
/// given element strategy and length range.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
