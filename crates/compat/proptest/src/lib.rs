//! Offline shim for `proptest`.
//!
//! The build container has no access to crates.io, so the workspace ships
//! minimal local stand-ins for its external dependencies (see
//! `crates/compat/README.md`). The shim keeps proptest's surface syntax —
//! the [`proptest!`] / [`prop_assert!`] / [`prop_oneof!`] macros, the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, `collection::vec` and `ProptestConfig` — but
//! runs a plain generate-and-check loop: deterministic ChaCha-seeded random
//! cases, **no shrinking**. A failing case panics with the generated inputs
//! attached, so failures are reproducible (the seed is derived from the
//! test name) even though they are not minimal.

pub mod strategy;

pub mod collection;

pub mod test_runner;

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the subset of upstream syntax used in this workspace: an
/// optional leading `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                let values = (
                    $( $crate::strategy::Strategy::generate(&($strategy), &mut rng), )*
                );
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let ( $($arg,)* ) = values.clone();
                    $body
                }));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest shim: {} failed at case {}/{} with inputs:\n{:#?}",
                        stringify!($name), case + 1, config.cases, values,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Picks uniformly among the given strategies (all of one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, f in 0.5f64..=1.5) {
            prop_assert!(x < 10);
            prop_assert!((0.5..=1.5).contains(&f));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0i64..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for e in &v {
                prop_assert!((0..5).contains(e));
            }
        }

        #[test]
        fn flat_map_and_map_compose(case in (1usize..4).prop_flat_map(|n| {
            crate::collection::vec(0u32..9, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(case.0, case.1.len());
        }

        #[test]
        fn oneof_picks_only_given_values(v in prop_oneof![Just(3u8), Just(7u8)]) {
            prop_assert!(v == 3 || v == 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_is_honored(_x in 0u32..2) {
            // Runs 17 times; nothing to assert beyond not panicking.
        }
    }

    proptest! {
        #[test]
        #[should_panic]
        fn failing_properties_are_detected(x in 10u32..20) {
            // Must fire on the very first generated case.
            prop_assert!(x < 10, "generated {x}");
        }
    }

    #[test]
    fn runner_executes_the_configured_number_of_cases() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static COUNT: AtomicU32 = AtomicU32::new(0);
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(23))]
            #[allow(clippy::no_effect_underscore_binding)]
            fn counted(_x in 0u32..5) {
                COUNT.fetch_add(1, Ordering::Relaxed);
            }
        }
        counted();
        assert_eq!(COUNT.load(Ordering::Relaxed), 23);
    }

    #[test]
    fn deterministic_rng_is_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("name_a");
        let mut b = crate::test_runner::TestRng::deterministic("name_a");
        let mut c = crate::test_runner::TestRng::deterministic("name_c");
        let s = 0u64..1_000_000;
        let va: Vec<u64> = (0..10).map(|_| s.generate(&mut a)).collect();
        let vb: Vec<u64> = (0..10).map(|_| s.generate(&mut b)).collect();
        let vc: Vec<u64> = (0..10).map(|_| s.generate(&mut c)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
