//! # ftes-sfp — system failure probability analysis
//!
//! Implements Appendix A of the DATE'09 paper *Analysis and Optimization of
//! Fault-Tolerant Embedded Systems with Hardened Processors*: the analysis
//! that connects the **hardening level** of each computation node with the
//! **maximum number of re-executions** needed in software to meet a
//! reliability goal ρ = 1 − γ per time unit τ.
//!
//! * [`NodeSfp`] — formulas (1)–(4): probability that more faults occur on
//!   a node than its re-execution budget `k_j` covers, summing over all
//!   f-fault scenarios (combinations with repetitions, evaluated via
//!   complete homogeneous symmetric polynomials);
//! * [`analyze`] / [`union_failure`] / [`reliability_over_unit`] —
//!   formulas (5)–(6): the system-level union over nodes and the
//!   reliability over τ/T iterations;
//! * [`ReExecutionOpt`] — the Section 6.3 greedy heuristic that finds the
//!   smallest budgets `k_j` meeting ρ;
//! * [`SystemSfp`] — the incremental engine behind the design-space
//!   exploration: per-node series caches with one-node delta updates, so a
//!   hardening or mapping change recomputes `O(changed)` instead of
//!   `O(all nodes × max_k)`;
//! * [`Rounding`] — the paper's pessimistic 10⁻¹¹ directed rounding.
//!
//! ## Example
//!
//! Reproducing the Appendix A.2 computation:
//!
//! ```
//! use ftes_model::Prob;
//! use ftes_sfp::{NodeSfp, Rounding};
//!
//! let probs = vec![Prob::new(1.2e-5)?, Prob::new(1.3e-5)?];
//! let node = NodeSfp::new(probs, Rounding::Pessimistic);
//! assert_eq!(node.pr_none(), 0.99997500015);       // Pr(0; N1²)
//! assert_eq!(node.pr_exactly(1), 0.00002499937);   // Pr(1; N1²)
//! assert!((node.pr_more_than(1) - 4.8e-10).abs() < 1e-16);
//! # Ok::<(), ftes_model::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod multiset;
mod node_failure;
mod reexec;
mod rounding;
mod scenario;
mod symmetric;
mod system;

pub use analysis::{analyze, node_process_probs, reliability_over_unit, union_failure, SfpResult};
pub use multiset::{multiset_count, Multisets};
pub use node_failure::NodeSfp;
pub use reexec::ReExecutionOpt;
pub use rounding::{Rounding, QUANTUM};
pub use scenario::{dominant_scenarios, scenario_mass, FaultScenario};
pub use symmetric::{complete_homogeneous, complete_homogeneous_naive};
pub use system::SystemSfp;
