//! `ReExecutionOpt` — the paper's Section 6.3 heuristic that chooses the
//! number of re-executions per node.
//!
//! Starting from zero re-executions everywhere, the heuristic greedily adds
//! one re-execution at a time *on the node where it increases system
//! reliability the most* (i.e. where it lowers the per-iteration union
//! failure probability the most), until the reliability goal ρ is met.

use ftes_model::{Prob, ReliabilityGoal, TimeUs};
use serde::{Deserialize, Serialize};

use crate::analysis::union_failure;
use crate::node_failure::NodeSfp;
use crate::rounding::Rounding;

/// Configuration of the re-execution optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReExecutionOpt {
    /// Upper bound on re-executions per node. The greedy search stops and
    /// reports failure once every node has reached this bound (or adding
    /// re-executions stops improving reliability, which happens under
    /// pessimistic rounding once probabilities hit the 10⁻¹¹ grid).
    pub max_k: u32,
    /// Rounding mode for the SFP formulas.
    pub rounding: Rounding,
}

impl Default for ReExecutionOpt {
    fn default() -> Self {
        ReExecutionOpt {
            max_k: 30,
            rounding: Rounding::Pessimistic,
        }
    }
}

impl ReExecutionOpt {
    /// Creates the optimizer with a re-execution cap and rounding mode.
    pub fn new(max_k: u32, rounding: Rounding) -> Self {
        ReExecutionOpt { max_k, rounding }
    }

    /// Finds the minimum-total re-execution budgets `k_j` meeting the
    /// reliability goal for processes with the given per-node failure
    /// probabilities, or `None` if the goal is unreachable within
    /// [`max_k`](ReExecutionOpt::max_k) re-executions per node.
    ///
    /// `node_probs[j]` lists the failure probabilities of the processes
    /// mapped on node `j` (empty for unused nodes). `period` is the
    /// application period `T` of formula (6).
    ///
    /// # Examples
    ///
    /// The paper's Fig. 4a architecture needs one re-execution per node:
    ///
    /// ```
    /// use ftes_model::{Prob, ReliabilityGoal, TimeUs};
    /// use ftes_sfp::ReExecutionOpt;
    ///
    /// let p = |v| Prob::new(v).unwrap();
    /// let ks = ReExecutionOpt::default()
    ///     .optimize(
    ///         &[vec![p(1.2e-5), p(1.3e-5)], vec![p(1.2e-5), p(1.3e-5)]],
    ///         ReliabilityGoal::per_hour(1e-5)?,
    ///         TimeUs::from_ms(360),
    ///     )
    ///     .expect("goal is reachable");
    /// assert_eq!(ks, vec![1, 1]);
    /// # Ok::<(), ftes_model::ModelError>(())
    /// ```
    pub fn optimize(
        &self,
        node_probs: &[Vec<Prob>],
        goal: ReliabilityGoal,
        period: TimeUs,
    ) -> Option<Vec<u32>> {
        // Precompute, per node, the failure probability for every budget
        // 0..=max_k in one pass.
        let series: Vec<Vec<f64>> = node_probs
            .iter()
            .map(|probs| NodeSfp::new(probs.clone(), self.rounding).pr_more_than_series(self.max_k))
            .collect();

        let mut ks = vec![0u32; node_probs.len()];
        let mut failures: Vec<f64> = series.iter().map(|s| s[0]).collect();

        loop {
            let union = self.rounding.up(union_failure(&failures));
            if goal.is_met(union, period) {
                return Some(ks);
            }
            // Pick the node where one more re-execution reduces the node
            // failure probability the most (the paper's "largest increase
            // in system reliability": with independent nodes, the union is
            // minimized by the largest single-node decrease).
            let mut best: Option<(usize, f64)> = None;
            for (j, s) in series.iter().enumerate() {
                let k = ks[j] as usize;
                if k + 1 > self.max_k as usize {
                    continue;
                }
                let gain = failures[j] - s[k + 1];
                if gain > 0.0 && best.map_or(true, |(_, g)| gain > g) {
                    best = Some((j, gain));
                }
            }
            let (j, _) = best?;
            ks[j] += 1;
            failures[j] = series[j][ks[j] as usize];
        }
    }

    /// The minimum single-node budget `k` for a *monoprocessor* system (or
    /// a single node analysed in isolation) to meet the goal, or `None`.
    ///
    /// Convenience wrapper used by the motivational examples (Fig. 2 and
    /// Fig. 3 consider one node at a time).
    pub fn min_k_single_node(
        &self,
        probs: &[Prob],
        goal: ReliabilityGoal,
        period: TimeUs,
    ) -> Option<u32> {
        self.optimize(&[probs.to_vec()], goal, period)
            .map(|ks| ks[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    fn goal() -> ReliabilityGoal {
        ReliabilityGoal::per_hour(1e-5).unwrap()
    }

    #[test]
    fn fig3_budgets_match_paper() {
        // Fig. 3: one process on N1, deadline/period 360 ms, ρ = 1−1e-5/h.
        // h1 (p = 4e-2) needs k = 6; h2 (p = 4e-4) needs k = 2; h3
        // (p = 4e-6) needs k = 1.
        let period = TimeUs::from_ms(360);
        let opt = ReExecutionOpt::default();
        assert_eq!(opt.min_k_single_node(&[p(4e-2)], goal(), period), Some(6));
        assert_eq!(opt.min_k_single_node(&[p(4e-4)], goal(), period), Some(2));
        assert_eq!(opt.min_k_single_node(&[p(4e-6)], goal(), period), Some(1));
    }

    #[test]
    fn fig2_budgets_match_paper() {
        // Fig. 2 narrates k = 2 / 1 / 0 for three progressively hardened
        // versions of N1 (Fig. 2 does not print its probabilities; these
        // failure probabilities produce exactly that k sequence).
        let period = TimeUs::from_ms(360);
        let opt = ReExecutionOpt::default();
        assert_eq!(opt.min_k_single_node(&[p(5e-4)], goal(), period), Some(2));
        assert_eq!(opt.min_k_single_node(&[p(1.2e-5)], goal(), period), Some(1));
        assert_eq!(
            opt.min_k_single_node(&[p(1.2e-10)], goal(), period),
            Some(0)
        );
    }

    #[test]
    fn fig4a_needs_one_reexecution_per_node() {
        let node_probs = vec![vec![p(1.2e-5), p(1.3e-5)], vec![p(1.2e-5), p(1.3e-5)]];
        let ks = ReExecutionOpt::default()
            .optimize(&node_probs, goal(), TimeUs::from_ms(360))
            .unwrap();
        assert_eq!(ks, vec![1, 1]);
    }

    #[test]
    fn fig4_monoprocessor_budgets() {
        // Fig. 4b: all four processes on N1^2 needs k1 = 2.
        let n1h2 = vec![vec![p(1.2e-5), p(1.3e-5), p(1.4e-5), p(1.6e-5)]];
        let ks = ReExecutionOpt::default()
            .optimize(&n1h2, goal(), TimeUs::from_ms(360))
            .unwrap();
        assert_eq!(ks, vec![2]);
        // Fig. 4d/e: all four on the most hardened version needs k = 0.
        let n1h3 = vec![vec![p(1.2e-10), p(1.3e-10), p(1.4e-10), p(1.6e-10)]];
        let ks = ReExecutionOpt::default()
            .optimize(&n1h3, goal(), TimeUs::from_ms(360))
            .unwrap();
        assert_eq!(ks, vec![0]);
    }

    #[test]
    fn greedy_prefers_larger_reliability_increase() {
        // Section 6.3's narration: add the re-execution where the system
        // reliability increases most. Node 2 has much worse processes, so
        // the first added re-execution must land there.
        let node_probs = vec![vec![p(1e-5)], vec![p(5e-3)]];
        let opt = ReExecutionOpt::new(30, Rounding::Exact);
        let ks = opt
            .optimize(&node_probs, goal(), TimeUs::from_ms(360))
            .unwrap();
        assert!(ks[1] > ks[0], "{ks:?}");
    }

    #[test]
    fn unused_nodes_need_no_reexecutions() {
        let node_probs = vec![vec![], vec![p(1.2e-5)]];
        let ks = ReExecutionOpt::default()
            .optimize(&node_probs, goal(), TimeUs::from_ms(360))
            .unwrap();
        assert_eq!(ks[0], 0);
    }

    #[test]
    fn unreachable_goal_returns_none() {
        // A certain failure can never meet the goal.
        let node_probs = vec![vec![p(1.0)]];
        assert_eq!(
            ReExecutionOpt::default().optimize(&node_probs, goal(), TimeUs::from_ms(360)),
            None
        );
    }

    #[test]
    fn max_k_bounds_the_search() {
        // p = 0.5 per execution needs ~30 re-executions for 1e-9-ish
        // budgets; cap at 3 and the search must give up.
        let node_probs = vec![vec![p(0.5)]];
        let opt = ReExecutionOpt::new(3, Rounding::Exact);
        assert_eq!(
            opt.optimize(&node_probs, goal(), TimeUs::from_ms(360)),
            None
        );
    }

    #[test]
    fn already_met_goal_needs_zero() {
        let node_probs = vec![vec![p(1e-12)], vec![]];
        let ks = ReExecutionOpt::default()
            .optimize(&node_probs, goal(), TimeUs::from_ms(360))
            .unwrap();
        assert_eq!(ks, vec![0, 0]);
    }
}
