//! Dominant fault-scenario reporting.
//!
//! Formula (3) sums over every f-fault scenario (a multiset of faulty
//! process executions). For design diagnostics it is useful to know *which*
//! scenarios dominate the recovery probability — e.g. "two faults both
//! hitting P2" vs "one fault each on P1 and P2". This module enumerates
//! the scenarios of a given order and ranks them.

use ftes_model::Prob;
use serde::{Deserialize, Serialize};

use crate::multiset::Multisets;

/// One f-fault scenario: which process indices fault (with repetitions,
/// non-decreasing) and the probability weight `Π p` of the combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Faulting process indices (into the probability slice), repetitions
    /// meaning repeated faults of the same process.
    pub faults: Vec<usize>,
    /// The product of the faulting processes' failure probabilities — the
    /// scenario's weight inside `h_f` of formula (3).
    pub weight: f64,
}

/// Enumerates all `f`-fault scenarios over the given process failure
/// probabilities, sorted by descending weight (ties: lexicographic fault
/// vector), truncated to `limit` entries.
///
/// # Examples
///
/// ```
/// use ftes_model::Prob;
/// use ftes_sfp::dominant_scenarios;
///
/// let probs = [Prob::new(1e-3)?, Prob::new(1e-5)?];
/// let top = dominant_scenarios(&probs, 2, 2);
/// // The double fault of the unreliable process dominates.
/// assert_eq!(top[0].faults, vec![0, 0]);
/// assert!((top[0].weight - 1e-6).abs() < 1e-18);
/// assert_eq!(top[1].faults, vec![0, 1]);
/// # Ok::<(), ftes_model::ModelError>(())
/// ```
pub fn dominant_scenarios(probs: &[Prob], f: usize, limit: usize) -> Vec<FaultScenario> {
    let values: Vec<f64> = probs.iter().map(|p| p.value()).collect();
    let mut scenarios: Vec<FaultScenario> = Multisets::new(values.len(), f)
        .map(|faults| {
            let weight = faults.iter().map(|&i| values[i]).product();
            FaultScenario { faults, weight }
        })
        .collect();
    scenarios.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .expect("weights are finite")
            .then_with(|| a.faults.cmp(&b.faults))
    });
    scenarios.truncate(limit);
    scenarios
}

/// The total weight of all `f`-fault scenarios — `h_f(p)`, the factor of
/// formula (3). Provided for cross-checking reports against
/// [`complete_homogeneous`](crate::complete_homogeneous).
pub fn scenario_mass(probs: &[Prob], f: usize) -> f64 {
    let values: Vec<f64> = probs.iter().map(|p| p.value()).collect();
    crate::symmetric::complete_homogeneous(&values, f)[f]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    #[test]
    fn paper_example_scenario_is_enumerated() {
        // The appendix's narration: P1 fails twice, P2 once, over {P1,P2,P3}.
        let probs = [p(1e-3), p(2e-3), p(3e-3)];
        let all = dominant_scenarios(&probs, 3, usize::MAX);
        assert_eq!(all.len(), 10); // C(5,3)
        let target = all.iter().find(|s| s.faults == vec![0, 0, 1]).unwrap();
        assert!((target.weight - 1e-3 * 1e-3 * 2e-3).abs() < 1e-18);
    }

    #[test]
    fn sorted_by_weight_descending() {
        let probs = [p(1e-2), p(1e-4), p(1e-6)];
        let all = dominant_scenarios(&probs, 2, usize::MAX);
        for w in all.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
        assert_eq!(all[0].faults, vec![0, 0]);
    }

    #[test]
    fn limit_truncates() {
        let probs = [p(0.1), p(0.2), p(0.3)];
        assert_eq!(dominant_scenarios(&probs, 2, 2).len(), 2);
        assert_eq!(dominant_scenarios(&probs, 2, 0).len(), 0);
    }

    #[test]
    fn mass_matches_sum_of_weights() {
        let probs = [p(0.1), p(0.2), p(0.3)];
        let all = dominant_scenarios(&probs, 3, usize::MAX);
        let sum: f64 = all.iter().map(|s| s.weight).sum();
        let mass = scenario_mass(&probs, 3);
        assert!((sum - mass).abs() < 1e-12, "{sum} vs {mass}");
    }

    #[test]
    fn zero_faults_is_the_empty_scenario() {
        let probs = [p(0.5)];
        let all = dominant_scenarios(&probs, 0, 10);
        assert_eq!(all.len(), 1);
        assert!(all[0].faults.is_empty());
        assert_eq!(all[0].weight, 1.0);
        assert_eq!(scenario_mass(&probs, 0), 1.0);
    }
}
