//! Per-node failure probabilities — formulas (1)–(4) of the paper.

use ftes_model::Prob;
use serde::{Deserialize, Serialize};

use crate::rounding::Rounding;
use crate::symmetric::complete_homogeneous;

/// SFP analysis of a single computation node `N_j^h`.
///
/// Holds the failure probabilities `p_ijh` of the processes mapped on the
/// node and evaluates:
///
/// * formula (1): `Pr(0; N_j^h) = Π_i (1 − p_ijh)` — no faulty processes;
/// * formula (3): `Pr(f; N_j^h) = Pr(0) · h_f(p)` — successful recovery
///   from exactly `f` faults;
/// * formula (4): `Pr(f > k_j; N_j^h) = 1 − Σ_{f=0}^{k_j} Pr(f)` — the node
///   fails, i.e. more faults occur than the re-execution budget covers.
///
/// # Examples
///
/// The Appendix A.2 numbers:
///
/// ```
/// use ftes_model::Prob;
/// use ftes_sfp::{NodeSfp, Rounding};
///
/// let node = NodeSfp::new(
///     vec![Prob::new(1.2e-5)?, Prob::new(1.3e-5)?],
///     Rounding::Pessimistic,
/// );
/// assert_eq!(node.pr_none(), 0.99997500015);
/// assert_eq!(node.pr_exactly(1), 0.00002499937);
/// assert!((node.pr_more_than(1) - 4.8e-10).abs() < 1e-16);
/// # Ok::<(), ftes_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSfp {
    probs: Vec<f64>,
    rounding: Rounding,
}

impl NodeSfp {
    /// Creates the analysis for a node whose mapped processes fail with the
    /// given probabilities. An empty list models an unused node (which
    /// never fails: `Pr(0) = 1`).
    pub fn new(probs: Vec<Prob>, rounding: Rounding) -> Self {
        NodeSfp {
            probs: probs.into_iter().map(Prob::value).collect(),
            rounding,
        }
    }

    /// Number of processes mapped on the node (`Π(N_j)` in the paper).
    pub fn process_count(&self) -> usize {
        self.probs.len()
    }

    /// The rounding mode in use.
    pub fn rounding(&self) -> Rounding {
        self.rounding
    }

    /// Formula (1): probability that one application iteration executes on
    /// this node without any fault.
    pub fn pr_none(&self) -> f64 {
        let exact: f64 = self.probs.iter().map(|p| 1.0 - p).product();
        self.rounding.down(exact)
    }

    /// Formula (3): probability of successful recovery from *exactly* `f`
    /// faults (all f-fault scenarios, combinations with repetitions).
    pub fn pr_exactly(&self, f: usize) -> f64 {
        if f == 0 {
            return self.pr_none();
        }
        let h = complete_homogeneous(&self.probs, f);
        self.rounding.down(self.pr_none() * h[f])
    }

    /// Formula (4): probability that *more than* `k` faults occur, i.e.
    /// the node's re-execution budget `k` is insufficient.
    ///
    /// The subtraction uses the (pessimistically rounded-down) recovery
    /// probabilities, so the result is rounded up, exactly as the paper
    /// prescribes. Clamped into `[0, 1]` against floating-point noise.
    pub fn pr_more_than(&self, k: u32) -> f64 {
        *self
            .pr_more_than_series(k)
            .last()
            .expect("series has k+1 entries")
    }

    /// `[Pr(f>0), Pr(f>1), …, Pr(f>kmax)]` in one pass — each entry is what
    /// [`pr_more_than`](NodeSfp::pr_more_than) would return. Useful for
    /// the re-execution optimization, which probes increasing budgets.
    pub fn pr_more_than_series(&self, kmax: u32) -> Vec<f64> {
        series_from_values(&self.probs, self.rounding, kmax as usize)
    }
}

/// The [`pr_more_than_series`](NodeSfp::pr_more_than_series) kernel over
/// raw probability values — shared with the incremental
/// [`SystemSfp`](crate::SystemSfp) so both paths run the identical
/// floating-point sequence.
pub(crate) fn series_from_values(probs: &[f64], rounding: Rounding, kmax: usize) -> Vec<f64> {
    let exact: f64 = probs.iter().map(|p| 1.0 - p).product();
    let pr0 = rounding.down(exact);
    let h = complete_homogeneous(probs, kmax);
    let mut out = Vec::with_capacity(kmax + 1);
    let mut remaining = 1.0 - pr0;
    out.push(remaining.clamp(0.0, 1.0));
    for hf in h.iter().skip(1) {
        remaining -= rounding.down(pr0 * hf);
        out.push(remaining.clamp(0.0, 1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs(values: &[f64]) -> Vec<Prob> {
        values.iter().map(|&v| Prob::new(v).unwrap()).collect()
    }

    #[test]
    fn appendix_a2_no_reexecution() {
        let node = NodeSfp::new(probs(&[1.2e-5, 1.3e-5]), Rounding::Pessimistic);
        assert_eq!(node.pr_none(), 0.99997500015);
        // Pr(f > 0) = 1 - 0.99997500015 ≈ 2.4999850e-5 with the rounded
        // Pr(0) (the paper prints the exact 0.000024999844; our rounded
        // value is strictly larger = more pessimistic).
        let pf0 = node.pr_more_than(0);
        assert!(pf0 >= 0.000024999844);
        assert!((pf0 - 0.000024999844).abs() < 2e-11);
    }

    #[test]
    fn appendix_a2_one_reexecution() {
        let node = NodeSfp::new(probs(&[1.2e-5, 1.3e-5]), Rounding::Pessimistic);
        assert_eq!(node.pr_exactly(1), 0.00002499937);
        let pf1 = node.pr_more_than(1);
        assert!((pf1 - 4.8e-10).abs() < 1e-16, "{pf1}");
    }

    #[test]
    fn series_matches_individual_queries() {
        let node = NodeSfp::new(probs(&[1e-3, 2e-3, 3e-3]), Rounding::Pessimistic);
        let series = node.pr_more_than_series(5);
        assert_eq!(series.len(), 6);
        for (k, &v) in series.iter().enumerate() {
            assert_eq!(v, node.pr_more_than(k as u32), "k={k}");
        }
        // Monotone non-increasing in k.
        for w in series.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn empty_node_never_fails() {
        let node = NodeSfp::new(vec![], Rounding::Pessimistic);
        assert_eq!(node.pr_none(), 1.0);
        assert_eq!(node.pr_more_than(0), 0.0);
        assert_eq!(node.pr_more_than(3), 0.0);
    }

    #[test]
    fn certain_process_failure_is_unrecoverable() {
        let node = NodeSfp::new(probs(&[1.0]), Rounding::Exact);
        assert_eq!(node.pr_none(), 0.0);
        // Every Pr(f) = Pr(0)·h_f = 0, so the node fails with certainty no
        // matter how many re-executions are budgeted.
        assert_eq!(node.pr_more_than(10), 1.0);
    }

    #[test]
    fn single_process_exact_mode_is_geometric() {
        // One process with failure probability p: Pr(f) = (1-p)·p^f and
        // Pr(f>k) = p^(k+1) exactly.
        let p = 4e-2;
        let node = NodeSfp::new(probs(&[p]), Rounding::Exact);
        for k in 0..6u32 {
            let expect = p.powi(k as i32 + 1);
            let got = node.pr_more_than(k);
            // The subtraction 1 − ΣPr(f) cancels at ~1e-16 absolute.
            assert!(
                (got - expect).abs() < 1e-15 + 1e-9 * expect,
                "k={k}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn pessimistic_dominates_exact() {
        let values = [1.2e-5, 1.3e-5, 2.7e-4];
        let pess = NodeSfp::new(probs(&values), Rounding::Pessimistic);
        let exact = NodeSfp::new(probs(&values), Rounding::Exact);
        for k in 0..4u32 {
            assert!(
                pess.pr_more_than(k) >= exact.pr_more_than(k) - 1e-18,
                "pessimism must not underestimate failure at k={k}"
            );
        }
    }

    #[test]
    fn process_count_reported() {
        let node = NodeSfp::new(probs(&[0.1, 0.2]), Rounding::Exact);
        assert_eq!(node.process_count(), 2);
        assert_eq!(node.rounding(), Rounding::Exact);
    }
}
