//! Directed rounding for pessimistic fault-tolerant design.
//!
//! Footnote 2 of the paper's Appendix A: *"numbers are rounded up/down with
//! 10⁻¹¹ accuracy. It is needed for pessimism of fault-tolerant design."*
//! Rounding every recovery probability `Pr(0)`, `Pr(f)` **down** makes the
//! derived node failure probability `Pr(f > k)` round **up**, so the
//! analysis never overestimates reliability. With this rule the library
//! reproduces the Appendix A.2 example digit for digit.

use serde::{Deserialize, Serialize};

/// The paper's rounding grid: 10⁻¹¹.
pub const QUANTUM: f64 = 1e-11;

/// Inverse grid (10¹¹), exactly representable in `f64`, so scaling by it
/// and dividing back is correctly rounded.
const SCALE: f64 = 1e11;

/// Tolerance in grid units absorbing `f64` representation error: a value
/// within 10⁻⁴ grid units (10⁻¹⁵ absolute) of a grid point is treated as
/// lying on it, so mathematically-on-grid values are fixed points.
const TOL: f64 = 1e-4;

/// How probabilities are rounded during SFP computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Rounding {
    /// No rounding: plain `f64` arithmetic. Use for large experimental
    /// sweeps where the 10⁻¹¹ grid would be coarser than the quantities
    /// involved.
    Exact,
    /// The paper's pessimistic mode: recovery probabilities are rounded
    /// down to the 10⁻¹¹ grid after every formula evaluation.
    #[default]
    Pessimistic,
}

impl Rounding {
    /// Rounds a recovery probability down (paper's ⌊·⌋ at 10⁻¹¹).
    #[inline]
    pub fn down(self, x: f64) -> f64 {
        match self {
            Rounding::Exact => x,
            Rounding::Pessimistic => ((x * SCALE + TOL).floor() / SCALE).min(x.max(0.0)).max(0.0),
        }
    }

    /// Rounds a failure probability up (paper's ⌈·⌉ at 10⁻¹¹).
    #[inline]
    pub fn up(self, x: f64) -> f64 {
        match self {
            Rounding::Exact => x,
            Rounding::Pessimistic => ((x * SCALE - TOL).ceil() / SCALE).max(x.min(1.0)).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pessimistic_reproduces_appendix_values() {
        // (1 - 1.2e-5)(1 - 1.3e-5) = 0.999975000156, paper rounds down to
        // 0.99997500015.
        let exact = (1.0 - 1.2e-5) * (1.0 - 1.3e-5);
        let rounded = Rounding::Pessimistic.down(exact);
        assert!((rounded - 0.99997500015).abs() < 1e-16);
        // Pr(1) = 0.99997500015 * 2.5e-5 = 2.4999375e-5 rounds down to
        // 0.00002499937.
        let pr1 = Rounding::Pessimistic.down(rounded * 2.5e-5);
        assert!((pr1 - 0.00002499937).abs() < 1e-16);
        // 1 - Pr(0) - Pr(1) = 4.8e-10 exactly on the grid.
        let pf = 1.0 - rounded - pr1;
        assert!((pf - 4.8e-10).abs() < 1e-16, "{pf}");
    }

    #[test]
    fn exact_mode_is_identity() {
        for x in [0.0, 1e-12, 0.5, 0.999975000156, 1.0] {
            assert_eq!(Rounding::Exact.down(x), x);
            assert_eq!(Rounding::Exact.up(x), x);
        }
    }

    #[test]
    fn down_never_increases_up_never_decreases() {
        for x in [0.0, 1.234e-11, 5.5e-7, 0.123456789, 0.99999999999, 1.0] {
            assert!(Rounding::Pessimistic.down(x) <= x);
            assert!(Rounding::Pessimistic.up(x) >= x);
            assert!((Rounding::Pessimistic.down(x) - x).abs() <= QUANTUM);
            assert!((Rounding::Pessimistic.up(x) - x).abs() <= QUANTUM);
        }
    }

    #[test]
    fn grid_values_are_fixed_points_of_down() {
        // Values already on the grid stay put (within one ulp of the grid
        // representation).
        let x = 4.8e-10;
        let d = Rounding::Pessimistic.down(x);
        assert!((d - x).abs() < 1e-21);
    }

    #[test]
    fn default_is_pessimistic() {
        assert_eq!(Rounding::default(), Rounding::Pessimistic);
    }
}
