//! Combinations with repetitions (finite multisets).
//!
//! The paper's formula (3) sums the recovery probability over all
//! *f-fault scenarios*: combinations with repetitions of `f` faults over
//! the processes mapped on a node, formalised as finite submultisets
//! `(S*, m*)` of size `f` ([Stanley, *Enumerative Combinatorics*]).
//!
//! [`Multisets`] enumerates these scenarios explicitly. The production code
//! path uses the symmetric-polynomial recurrence in
//! [`symmetric`](crate::symmetric) instead (`O(m·f)` rather than
//! `O(C(m+f-1, f))`), but the explicit enumeration is kept both as the
//! executable specification the fast path is tested against and for
//! generating human-readable fault scenarios.

/// Iterator over all multisets of size `f` drawn from `m` elements.
///
/// Each item is a non-decreasing vector of `f` element indices
/// (`[0, 0, 1]` means "element 0 fails twice, element 1 fails once").
/// The number of items is `C(m + f − 1, f)`.
///
/// # Examples
///
/// ```
/// use ftes_sfp::Multisets;
///
/// // The paper's example: 3 faults over processes {P1, P2, P3} — one
/// // scenario is P1 failing twice and P2 once: [0, 0, 1].
/// let scenarios: Vec<Vec<usize>> = Multisets::new(3, 3).collect();
/// assert_eq!(scenarios.len(), 10); // C(5, 3)
/// assert!(scenarios.contains(&vec![0, 0, 1]));
/// ```
#[derive(Debug, Clone)]
pub struct Multisets {
    m: usize,
    state: Option<Vec<usize>>,
}

impl Multisets {
    /// Enumerates multisets of size `f` over `m` elements.
    ///
    /// With `m == 0` and `f > 0` the iterator is empty; with `f == 0` it
    /// yields exactly the empty multiset.
    pub fn new(m: usize, f: usize) -> Self {
        let state = if f == 0 {
            Some(Vec::new())
        } else if m == 0 {
            None
        } else {
            Some(vec![0; f])
        };
        Multisets { m, state }
    }
}

impl Iterator for Multisets {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.state.take()?;
        if !current.is_empty() {
            // Advance to the next non-decreasing vector, odometer style.
            let mut next = current.clone();
            let f = next.len();
            let mut i = f;
            loop {
                if i == 0 {
                    // Wrapped past the last multiset.
                    self.state = None;
                    break;
                }
                i -= 1;
                if next[i] + 1 < self.m {
                    let v = next[i] + 1;
                    for slot in next.iter_mut().skip(i) {
                        *slot = v;
                    }
                    self.state = Some(next);
                    break;
                }
            }
        }
        Some(current)
    }
}

/// `C(m + f − 1, f)` — the number of multisets of size `f` over `m`
/// elements, saturating at `u128::MAX`.
pub fn multiset_count(m: usize, f: usize) -> u128 {
    if f == 0 {
        return 1;
    }
    if m == 0 {
        return 0;
    }
    // C(m+f-1, f) computed incrementally.
    let n = (m + f - 1) as u128;
    let k = f as u128;
    let mut result: u128 = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_multiset_for_f_zero() {
        let all: Vec<_> = Multisets::new(3, 0).collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
        assert_eq!(multiset_count(3, 0), 1);
    }

    #[test]
    fn no_multisets_from_empty_ground_set() {
        assert_eq!(Multisets::new(0, 2).count(), 0);
        assert_eq!(multiset_count(0, 2), 0);
    }

    #[test]
    fn enumerates_pairs_from_two_elements() {
        let all: Vec<_> = Multisets::new(2, 2).collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 1]]);
    }

    #[test]
    fn paper_example_three_faults_three_processes() {
        // f = 3 faults over P1..P3: C(5,3) = 10 scenarios, including the
        // paper's "P1 fails twice, P2 once".
        let all: Vec<_> = Multisets::new(3, 3).collect();
        assert_eq!(all.len(), 10);
        assert_eq!(multiset_count(3, 3), 10);
        assert!(all.contains(&vec![0, 0, 1]));
        // All vectors are non-decreasing and within range.
        for v in &all {
            assert!(v.windows(2).all(|w| w[0] <= w[1]));
            assert!(v.iter().all(|&x| x < 3));
        }
        // All distinct.
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn count_matches_enumeration_for_small_cases() {
        for m in 0..5 {
            for f in 0..6 {
                assert_eq!(
                    Multisets::new(m, f).count() as u128,
                    multiset_count(m, f),
                    "m={m} f={f}"
                );
            }
        }
    }

    #[test]
    fn count_handles_large_inputs_without_overflow() {
        assert_eq!(multiset_count(40, 2), 820);
        // Saturates rather than panicking.
        let _ = multiset_count(1000, 500);
    }
}
