//! Complete homogeneous symmetric polynomials.
//!
//! The sum over all f-fault scenarios in the paper's formula (3) is
//!
//! ```text
//! Σ_{(S*,m*) ⊂ (S,m), |S*| = f}  Π_{s* ∈ (S*,m*)} p_{s*}
//! ```
//!
//! which is exactly the complete homogeneous symmetric polynomial
//! `h_f(p_1, …, p_m)`. Instead of enumerating the `C(m+f−1, f)` multisets
//! we evaluate it with the standard recurrence
//!
//! ```text
//! H_j(f) = H_{j−1}(f) + p_j · H_j(f−1)
//! ```
//!
//! (`H_j` = polynomial over the first `j` variables) in `O(m·f)` time.

/// Evaluates `h_0, h_1, …, h_fmax` over the given variables.
///
/// Returns a vector of length `fmax + 1`; `result[f]` is `h_f(probs)`.
/// `h_0` is 1 by convention (the empty product), even for zero variables.
///
/// # Examples
///
/// ```
/// use ftes_sfp::complete_homogeneous;
///
/// let h = complete_homogeneous(&[0.1, 0.2], 2);
/// assert!((h[0] - 1.0).abs() < 1e-15);
/// assert!((h[1] - 0.3).abs() < 1e-15);            // p1 + p2
/// assert!((h[2] - 0.07).abs() < 1e-15);           // p1² + p1·p2 + p2²
/// ```
pub fn complete_homogeneous(probs: &[f64], fmax: usize) -> Vec<f64> {
    let mut h = vec![0.0; fmax + 1];
    h[0] = 1.0;
    for &p in probs {
        for f in 1..=fmax {
            h[f] += p * h[f - 1];
        }
    }
    h
}

/// Reference implementation via explicit multiset enumeration — the
/// executable specification of [`complete_homogeneous`], exponential in
/// `f`. Exposed for differential testing and for tooling that needs the
/// individual fault scenarios.
pub fn complete_homogeneous_naive(probs: &[f64], fmax: usize) -> Vec<f64> {
    (0..=fmax)
        .map(|f| {
            crate::multiset::Multisets::new(probs.len(), f)
                .map(|scenario| scenario.iter().map(|&i| probs[i]).product::<f64>())
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            let tol = 1e-12 * (1.0 + x.abs().max(y.abs()));
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matches_hand_computed_values() {
        // Single variable: h_f = p^f.
        let h = complete_homogeneous(&[0.5], 3);
        assert_close(&h, &[1.0, 0.5, 0.25, 0.125]);
        // Two variables, degree 3:
        // h_3 = p³ + p²q + pq² + q³.
        let (p, q) = (0.3, 0.7);
        let h = complete_homogeneous(&[p, q], 3);
        let h3 = p * p * p + p * p * q + p * q * q + q * q * q;
        assert!((h[3] - h3).abs() < 1e-15);
    }

    #[test]
    fn empty_variable_set() {
        let h = complete_homogeneous(&[], 3);
        assert_eq!(h, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn fmax_zero() {
        assert_eq!(complete_homogeneous(&[0.1, 0.2], 0), vec![1.0]);
    }

    #[test]
    fn agrees_with_naive_enumeration() {
        let cases: &[&[f64]] = &[
            &[1.2e-5, 1.3e-5],
            &[4e-2],
            &[0.1, 0.2, 0.3, 0.4],
            &[1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3],
        ];
        for probs in cases {
            let fast = complete_homogeneous(probs, 4);
            let slow = complete_homogeneous_naive(probs, 4);
            assert_close(&fast, &slow);
        }
    }

    #[test]
    fn appendix_a2_first_order_term() {
        // A.2: Pr(1) / Pr(0) = p1 + p2 = 2.5e-5 for N1^2.
        let h = complete_homogeneous(&[1.2e-5, 1.3e-5], 1);
        assert!((h[1] - 2.5e-5).abs() < 1e-18);
    }
}
