//! System-level SFP analysis — formulas (5) and (6) of the paper.

use ftes_model::{
    log_survival, Application, Architecture, Mapping, ModelError, Prob, ReliabilityGoal, TimeUs,
    TimingDb,
};
use serde::{Deserialize, Serialize};

use crate::node_failure::NodeSfp;
use crate::rounding::Rounding;

/// Collects, for every architecture node, the failure probabilities of the
/// processes mapped on it (at the node's selected hardening level).
///
/// This is the bridge between the system model and the per-node
/// [`NodeSfp`] analysis.
///
/// # Errors
///
/// Returns [`ModelError::MissingTiming`] if some process has no
/// failure-probability entry on its assigned node type/level, and the
/// mapping/architecture validation errors of
/// [`Mapping::validate`].
pub fn node_process_probs(
    app: &Application,
    timing: &TimingDb,
    arch: &Architecture,
    mapping: &Mapping,
) -> Result<Vec<Vec<Prob>>, ModelError> {
    mapping.validate(app, arch, timing)?;
    let mut per_node: Vec<Vec<Prob>> = vec![Vec::new(); arch.node_count()];
    for p in app.process_ids() {
        let n = mapping.node_of(p);
        let inst = arch.node(n);
        let prob = timing.pfail(p, inst.node_type, inst.hardening)?;
        per_node[n.index()].push(prob);
    }
    Ok(per_node)
}

/// The outcome of a full system SFP analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SfpResult {
    /// Per-node `Pr(f > k_j; N_j^h)` — the probability that node `j`'s
    /// re-execution budget is exceeded in one iteration.
    pub node_failure: Vec<f64>,
    /// Formula (5): probability that at least one node exceeds its budget
    /// in one application iteration.
    pub p_fail_per_iteration: f64,
    /// Formula (6) left-hand side: system reliability over the goal's time
    /// unit τ, `(1 − p_fail_per_iteration)^(τ/T)`.
    pub reliability_over_unit: f64,
    /// Whether the reliability goal ρ is met.
    pub meets_goal: bool,
}

/// Formula (5): the union of the per-node failure probabilities, assuming
/// node failures are independent:
/// `Pr(∪_j f > k_j) = 1 − Π_j (1 − Pr(f > k_j))`.
pub fn union_failure(node_failure: &[f64]) -> f64 {
    // Evaluated in the log domain (−expm1(Σ ln1p(−q))) so that tiny
    // per-node probabilities (10⁻¹⁰ and below) do not cancel against 1.0.
    let log_ok: f64 = node_failure.iter().copied().map(log_survival).sum();
    (-f64::exp_m1(log_ok)).clamp(0.0, 1.0)
}

/// Formula (6) left-hand side: reliability over the time unit τ for an
/// application with period `period`.
pub fn reliability_over_unit(p_fail_iter: f64, goal: ReliabilityGoal, period: TimeUs) -> f64 {
    let n = goal.iterations(period);
    (n * (-p_fail_iter.clamp(0.0, 1.0)).ln_1p()).exp()
}

/// Runs the complete SFP analysis (formulas (1)–(6)) for a mapped
/// application with the re-execution budgets `ks[j]` per architecture node.
///
/// # Errors
///
/// Propagates model lookup errors (missing timing entries, invalid
/// mapping). `ks` must have one entry per architecture node; a mismatch is
/// reported as [`ModelError::IncompleteMapping`].
///
/// # Examples
///
/// The Appendix A.2 computation (Fig. 4a architecture, k = (1, 1)):
///
/// ```
/// use ftes_model::paper;
/// use ftes_sfp::{analyze, Rounding};
///
/// let sys = paper::fig1_system();
/// let (arch, mapping) = paper::fig4_alternative('a');
/// let result = analyze(
///     sys.application(), sys.timing(), &arch, &mapping,
///     &[1, 1], sys.goal(), Rounding::Pessimistic,
/// )?;
/// assert!(result.meets_goal);
/// assert!((result.reliability_over_unit - 0.99999040004).abs() < 1e-9);
/// # Ok::<(), ftes_model::ModelError>(())
/// ```
#[allow(clippy::too_many_arguments)]
pub fn analyze(
    app: &Application,
    timing: &TimingDb,
    arch: &Architecture,
    mapping: &Mapping,
    ks: &[u32],
    goal: ReliabilityGoal,
    rounding: Rounding,
) -> Result<SfpResult, ModelError> {
    if ks.len() != arch.node_count() {
        return Err(ModelError::IncompleteMapping {
            expected: arch.node_count(),
            got: ks.len(),
        });
    }
    let per_node = node_process_probs(app, timing, arch, mapping)?;
    let node_failure: Vec<f64> = per_node
        .into_iter()
        .zip(ks)
        .map(|(probs, &k)| NodeSfp::new(probs, rounding).pr_more_than(k))
        .collect();
    // The union is rounded up under the pessimistic mode, matching the
    // paper's ⌈·⌉ on Pr(∪_j f > k_j) in Appendix A.2.
    let p_fail_per_iteration = rounding.up(union_failure(&node_failure));
    let reliability = reliability_over_unit(p_fail_per_iteration, goal, app.period());
    Ok(SfpResult {
        node_failure,
        p_fail_per_iteration,
        reliability_over_unit: reliability,
        meets_goal: goal.is_met(p_fail_per_iteration, app.period()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_model::paper;

    #[test]
    fn union_of_empty_is_zero() {
        assert_eq!(union_failure(&[]), 0.0);
    }

    #[test]
    fn union_matches_formula_five() {
        // Paper A.2: two nodes at 4.8e-10 each → 9.6e-10 (to print precision).
        let u = union_failure(&[4.8e-10, 4.8e-10]);
        assert!((u - 9.6e-10).abs() < 1e-17, "{u}");
        // And for k = 0: ⌈1-(1-0.000024999844)²⌉ = 0.00004999907 after the
        // paper's upward rounding at 1e-11.
        let u0 = Rounding::Pessimistic.up(union_failure(&[0.000024999844, 0.000024999844]));
        assert!((u0 - 0.00004999907).abs() < 1e-15, "{u0}");
    }

    #[test]
    fn union_clamps() {
        assert_eq!(union_failure(&[1.0, 0.5]), 1.0);
        assert_eq!(union_failure(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn reliability_matches_paper_power() {
        let goal = ReliabilityGoal::per_hour(1e-5).unwrap();
        let period = TimeUs::from_ms(360);
        // (1 - 9.6e-10)^10000 = 0.99999040004
        let r = reliability_over_unit(9.6e-10, goal, period);
        assert!((r - 0.99999040004).abs() < 1e-11);
        // (1 - 0.00004999907)^10000 = 0.60652871884
        let r0 = reliability_over_unit(0.00004999907, goal, period);
        assert!((r0 - 0.60652871884).abs() < 1e-9);
    }

    #[test]
    fn analyze_appendix_a2_full() {
        let sys = paper::fig1_system();
        let (arch, mapping) = paper::fig4_alternative('a');
        // k1 = k2 = 0: goal missed with reliability ~0.6065.
        let r0 = analyze(
            sys.application(),
            sys.timing(),
            &arch,
            &mapping,
            &[0, 0],
            sys.goal(),
            Rounding::Pessimistic,
        )
        .unwrap();
        assert!(!r0.meets_goal);
        assert!((r0.reliability_over_unit - 0.60652871884).abs() < 2e-4);
        // k1 = k2 = 1: goal met with reliability 0.99999040004.
        let r1 = analyze(
            sys.application(),
            sys.timing(),
            &arch,
            &mapping,
            &[1, 1],
            sys.goal(),
            Rounding::Pessimistic,
        )
        .unwrap();
        assert!(r1.meets_goal);
        assert!((r1.reliability_over_unit - 0.99999040004).abs() < 1e-9);
        assert!((r1.node_failure[0] - 4.8e-10).abs() < 1e-16);
        assert!((r1.node_failure[1] - 4.8e-10).abs() < 1e-16);
    }

    #[test]
    fn analyze_rejects_wrong_k_vector() {
        let sys = paper::fig1_system();
        let (arch, mapping) = paper::fig4_alternative('a');
        let err = analyze(
            sys.application(),
            sys.timing(),
            &arch,
            &mapping,
            &[1],
            sys.goal(),
            Rounding::Pessimistic,
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::IncompleteMapping { .. }));
    }

    #[test]
    fn node_process_probs_groups_by_mapping() {
        let sys = paper::fig1_system();
        let (arch, mapping) = paper::fig4_alternative('a');
        let per_node =
            node_process_probs(sys.application(), sys.timing(), &arch, &mapping).unwrap();
        assert_eq!(per_node.len(), 2);
        let vals: Vec<Vec<f64>> = per_node
            .iter()
            .map(|v| v.iter().map(|p| p.value()).collect())
            .collect();
        assert_eq!(vals[0], vec![1.2e-5, 1.3e-5]); // P1, P2 on N1^2
        assert_eq!(vals[1], vec![1.2e-5, 1.3e-5]); // P3, P4 on N2^2
    }
}
