//! `SystemSfp` — incremental system-level SFP analysis.
//!
//! The design-space exploration of Section 6 probes thousands of candidate
//! solutions that differ from their predecessor in **one node**: the
//! hardening trade-off raises or lowers a single node's level, and a tabu
//! move re-maps one process (touching its old and new node). The
//! from-scratch pipeline ([`analyze`](crate::analyze) /
//! [`ReExecutionOpt`](crate::ReExecutionOpt)) re-derives every node's
//! `Pr(f > k)` series up to `max_k` for each probe —
//! `O(nodes × processes × max_k)` float work of which almost everything is
//! identical to the previous probe, and of which the deep-`k` tail is
//! never consulted when the greedy budget search stops at small `k`.
//!
//! [`SystemSfp`] makes that structure explicit. Per node it holds the
//! failure probabilities of the mapped processes, the **lazily extended**
//! prefix of the [`pr_more_than_series`](crate::NodeSfp::pr_more_than_series)
//! values, and the log-domain union terms `ln(1 − Pr(f > k))` consumed by
//! formula (5). The series and log terms live in a **struct-of-arrays
//! layout**: one contiguous `series_buf`/`log_ok_buf` pair for the whole
//! architecture, with per-node segments addressed through a `seg` offset
//! table. The greedy climb and the union sum walk those buffers instead of
//! chasing one heap allocation per node, and a one-node delta update whose
//! series depth is unchanged is a straight `copy_from_slice` into the
//! node's segment (the steady state of a warmed-up search); only a depth
//! change splices the buffer. Three caching levels compound on top:
//!
//! 1. [`set_node_probs`](SystemSfp::set_node_probs) is a one-node delta
//!    update — other nodes keep their series untouched;
//! 2. a **configuration memo** keyed by the exact probability bit patterns
//!    resolves nodes the search has analyzed before (the hardening walk
//!    and tabu moves revisit few distinct per-node configurations);
//! 3. series are computed only as deep as a query actually demands
//!    (`Pr(f > k)` is prefix-stable in the computation, so a deeper
//!    recomputation reproduces the shallow values bit for bit).
//!
//! A fourth, query-side cache shortcuts the climb's `exp_m1`/`ln_1p`
//! chain: the reliability-goal decision is memoized on the bit pattern of
//! the log-domain union sum (see [`optimize_into`](SystemSfp::optimize_into)
//! for the bit-exactness argument).
//!
//! The incremental path is **bit-identical** to the from-scratch one: the
//! series values come from the same kernel as [`NodeSfp`](crate::NodeSfp),
//! the union is the same left-to-right log-domain sum as
//! [`union_failure`](crate::union_failure), and the greedy budget search
//! mirrors [`ReExecutionOpt::optimize`](crate::ReExecutionOpt::optimize)
//! step for step. The from-scratch implementations remain the executable
//! specification (mirroring `complete_homogeneous_naive`); the
//! differential suite in `tests/incremental_differential.rs` holds the two
//! paths together.

use std::sync::Arc;

use ftes_model::fasthash::FastHashMap;
use ftes_model::{log_survival, Prob, ReliabilityGoal, TimeUs};

use crate::analysis::{reliability_over_unit, SfpResult};
use crate::node_failure::series_from_values;
use crate::rounding::Rounding;

/// Soft bound on memoized node configurations; the memo is dropped
/// wholesale when it grows past this.
const MEMO_CAP: usize = 1 << 12;

/// Soft bound on memoized reliability-goal decisions.
const GOAL_MEMO_CAP: usize = 1 << 12;

/// Cached per-node state: the mapped processes' failure probabilities, the
/// computed prefix of the `Pr(f > k)` series, and the log-domain union
/// terms. Shared via `Arc` between the per-node slots and the
/// configuration memo; the hot queries read the contiguous SoA mirror in
/// [`SystemSfp`] instead.
#[derive(Debug)]
struct NodeState {
    /// Failure probabilities of the processes mapped on the node, in
    /// process-id order (the order [`node_process_probs`] produces).
    ///
    /// [`node_process_probs`]: crate::node_process_probs
    probs: Vec<f64>,
    /// `series[k] = Pr(f > k; N_j^h)` for the computed prefix `k <= k_done`
    /// (`series.len() = k_done + 1`; extended on demand).
    series: Vec<f64>,
    /// `log_ok[k] = ln(1 − series[k])`, the node's term of the log-domain
    /// union sum of formula (5). Same length as `series`.
    log_ok: Vec<f64>,
}

impl NodeState {
    fn compute(probs: Vec<f64>, k_done: usize, rounding: Rounding) -> Arc<Self> {
        let series = series_from_values(&probs, rounding, k_done);
        let log_ok = series.iter().map(|&q| log_survival(q)).collect();
        Arc::new(NodeState {
            probs,
            series,
            log_ok,
        })
    }
}

/// Memo key: the exact bit patterns of a node's probability list. Two
/// lists hash/compare equal iff they would produce the identical series,
/// so a memo hit can never change results.
type NodeKey = Vec<u64>;

fn key_of(probs: &[f64]) -> NodeKey {
    probs.iter().map(|p| p.to_bits()).collect()
}

/// Stateful, incrementally-updatable SFP analysis of a whole architecture.
///
/// Owns one lazily-extended `Pr(f > k)` series per architecture node plus
/// the log-domain partial terms of [`union_failure`](crate::union_failure),
/// stored struct-of-arrays: `series_buf`/`log_ok_buf` hold every node's
/// computed prefix back to back, `seg[j]..seg[j+1]` addresses node `j`'s
/// segment. Point updates ([`set_node_probs`](SystemSfp::set_node_probs))
/// recompute only the touched node and rewrite only its segment; queries
/// ([`optimize`](SystemSfp::optimize), [`analyze`](SystemSfp::analyze))
/// run off the caches and extend them on demand, which is why they take
/// `&mut self`.
///
/// # Examples
///
/// The Fig. 4a architecture, then a one-node hardening change:
///
/// ```
/// use ftes_model::{Prob, ReliabilityGoal, TimeUs};
/// use ftes_sfp::{Rounding, SystemSfp};
///
/// let p = |v| Prob::new(v).unwrap();
/// let mut sys = SystemSfp::new(2, 30, Rounding::Pessimistic);
/// sys.set_node_probs(0, &[p(1.2e-5), p(1.3e-5)]);
/// sys.set_node_probs(1, &[p(1.2e-5), p(1.3e-5)]);
/// let goal = ReliabilityGoal::per_hour(1e-5)?;
/// let ks = sys.optimize(goal, TimeUs::from_ms(360)).expect("reachable");
/// assert_eq!(ks, vec![1, 1]);
///
/// // Harden node 0: only node 0's series is recomputed.
/// sys.set_node_probs(0, &[p(1.2e-10), p(1.3e-10)]);
/// let ks = sys.optimize(goal, TimeUs::from_ms(360)).expect("reachable");
/// assert_eq!(ks, vec![0, 1]);
/// # Ok::<(), ftes_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SystemSfp {
    max_k: u32,
    rounding: Rounding,
    /// Per-node configuration handles (probability lists + the deepest
    /// computed series, shared with the memo). Queries never walk these;
    /// they read the SoA mirror below.
    states: Vec<Arc<NodeState>>,
    /// Segment offsets into the SoA buffers: node `j` owns
    /// `series_buf[seg[j]..seg[j+1]]` (always `node_count + 1` entries).
    seg: Vec<usize>,
    /// All nodes' `Pr(f > k)` prefixes, back to back in node order.
    series_buf: Vec<f64>,
    /// All nodes' `ln(1 − Pr(f > k))` terms, same layout as `series_buf`.
    log_ok_buf: Vec<f64>,
    /// The configuration memo: the "cached candidate scoring" layer.
    /// Fast-hashed (FxHash-style) — the search hashes these keys hundreds
    /// of thousands of times per exploration, where SipHash's per-call
    /// setup used to dominate the lookup.
    memo: FastHashMap<NodeKey, Arc<NodeState>>,
    /// Reusable scratch for memo-key construction (allocation-free
    /// lookups on the hot path).
    key_scratch: Vec<u64>,
    /// Reusable per-node gain buffer of the budget climb.
    gain_scratch: Vec<Option<f64>>,
    /// Validity key of `goal_memo`: the exact bit patterns of the hoisted
    /// goal constants `(n_iterations, ln ρ)` the memo was filled under.
    goal_key: (u64, u64),
    /// Reliability-goal decisions keyed by the bit pattern of the
    /// log-domain union sum — see `optimize_into` for why this is exact.
    goal_memo: FastHashMap<u64, bool>,
    memo_hits: u64,
    series_computed: u64,
}

impl SystemSfp {
    /// Creates the analyzer for `node_count` initially-empty nodes (an
    /// empty node never fails) with budgets searched up to `max_k`.
    pub fn new(node_count: usize, max_k: u32, rounding: Rounding) -> Self {
        let mut sys = SystemSfp {
            max_k,
            rounding,
            states: Vec::new(),
            seg: vec![0],
            series_buf: Vec::new(),
            log_ok_buf: Vec::new(),
            memo: FastHashMap::default(),
            key_scratch: Vec::new(),
            gain_scratch: Vec::new(),
            goal_key: (u64::MAX, u64::MAX),
            goal_memo: FastHashMap::default(),
            memo_hits: 0,
            series_computed: 0,
        };
        sys.set_node_count(node_count);
        sys
    }

    /// Builds the analyzer from per-node process failure probabilities (as
    /// produced by [`node_process_probs`](crate::node_process_probs)).
    pub fn from_node_probs(node_probs: &[Vec<Prob>], max_k: u32, rounding: Rounding) -> Self {
        let mut sys = SystemSfp::new(node_probs.len(), max_k, rounding);
        for (j, probs) in node_probs.iter().enumerate() {
            sys.set_node_probs(j, probs);
        }
        sys
    }

    /// Number of analyzed nodes.
    pub fn node_count(&self) -> usize {
        self.states.len()
    }

    /// The configured budget bound.
    pub fn max_k(&self) -> u32 {
        self.max_k
    }

    /// The rounding mode in use.
    pub fn rounding(&self) -> Rounding {
        self.rounding
    }

    /// Times a [`set_node_probs`](SystemSfp::set_node_probs) call resolved
    /// from the configuration memo instead of recomputing.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Times a node series (prefix) was actually computed or extended.
    pub fn series_computed(&self) -> u64 {
        self.series_computed
    }

    /// Resizes to `node_count` nodes; new slots start empty, removed slots
    /// are dropped. Existing nodes keep their cached series.
    pub fn set_node_count(&mut self, node_count: usize) {
        let old = self.states.len();
        if node_count < old {
            self.states.truncate(node_count);
            let end = self.seg[node_count];
            self.seg.truncate(node_count + 1);
            self.series_buf.truncate(end);
            self.log_ok_buf.truncate(end);
        } else if node_count > old {
            let empty = NodeState::compute(Vec::new(), 0, self.rounding);
            for _ in old..node_count {
                self.series_buf.extend_from_slice(&empty.series);
                self.log_ok_buf.extend_from_slice(&empty.log_ok);
                self.seg.push(self.series_buf.len());
                self.states.push(Arc::clone(&empty));
            }
        }
    }

    /// The failure probabilities currently cached for node `j`, in
    /// process-id order.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn node_probs(&self, j: usize) -> &[f64] {
        &self.states[j].probs
    }

    /// The **computed prefix** of node `j`'s `Pr(f > k)` series
    /// (`series()[k]` for `k < series().len()`; at least `Pr(f > 0)` is
    /// always present) — a slice of the contiguous SoA buffer. Use
    /// [`pr_more_than`](SystemSfp::pr_more_than) to force a specific depth.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn series(&self, j: usize) -> &[f64] {
        &self.series_buf[self.seg[j]..self.seg[j + 1]]
    }

    /// `Pr(f > k)` of node `j`, extending the cached series as needed —
    /// bit-identical to [`NodeSfp::pr_more_than`](crate::NodeSfp::pr_more_than)
    /// on the same probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn pr_more_than(&mut self, j: usize, k: u32) -> f64 {
        self.ensure_k(j, k as usize);
        self.series_buf[self.seg[j] + k as usize]
    }

    /// Rewrites node `j`'s SoA segment from `states[j]`. When the series
    /// depth is unchanged (the steady state: the memo serves a
    /// configuration at its established depth) this is a pair of
    /// `copy_from_slice` calls into the segment; a depth change splices
    /// the buffers and shifts the following offsets.
    fn splice_segment(&mut self, j: usize) {
        let (start, end) = (self.seg[j], self.seg[j + 1]);
        let state = Arc::clone(&self.states[j]);
        let new_len = state.series.len();
        let old_len = end - start;
        if new_len != old_len {
            // Shift the tail by hand instead of `Vec::splice`: splice's
            // grow path collects the iterator remainder into a fresh
            // `Vec`, while resize + copy_within reuses the buffers'
            // existing capacity (a warmed-up search flipping between two
            // depths never allocates here).
            let total = self.series_buf.len();
            if new_len > old_len {
                let grow = new_len - old_len;
                self.series_buf.resize(total + grow, 0.0);
                self.series_buf.copy_within(end..total, end + grow);
                self.log_ok_buf.resize(total + grow, 0.0);
                self.log_ok_buf.copy_within(end..total, end + grow);
            } else {
                let shrink = old_len - new_len;
                self.series_buf.copy_within(end..total, end - shrink);
                self.series_buf.truncate(total - shrink);
                self.log_ok_buf.copy_within(end..total, end - shrink);
                self.log_ok_buf.truncate(total - shrink);
            }
            let delta = new_len as isize - old_len as isize;
            for s in &mut self.seg[j + 1..] {
                *s = (*s as isize + delta) as usize;
            }
        }
        let new_end = start + new_len;
        self.series_buf[start..new_end].copy_from_slice(&state.series);
        self.log_ok_buf[start..new_end].copy_from_slice(&state.log_ok);
    }

    /// Replaces node `j`'s process failure probabilities — the one-node
    /// delta update. A configuration seen before this search is a memo
    /// lookup plus a segment splice; a fresh one costs `O(|probs|)` now
    /// (series prefix of depth 0) plus lazy extension on demand. Every
    /// other node's cache is untouched either way.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn set_node_probs(&mut self, j: usize, probs: &[Prob]) {
        // Allocation-free lookup: build the bit-pattern key in the
        // reusable scratch buffer; only a miss clones it into the map.
        let mut key = std::mem::take(&mut self.key_scratch);
        key.clear();
        key.extend(probs.iter().map(|p| p.value().to_bits()));
        if let Some(state) = self.memo.get(key.as_slice()) {
            self.memo_hits += 1;
            self.states[j] = Arc::clone(state);
            self.key_scratch = key;
            self.splice_segment(j);
            return;
        }
        let values: Vec<f64> = probs.iter().map(|p| p.value()).collect();
        let state = NodeState::compute(values, 0, self.rounding);
        self.series_computed += 1;
        if self.memo.len() >= MEMO_CAP {
            self.memo.clear();
        }
        self.memo.insert(key.clone(), Arc::clone(&state));
        self.states[j] = state;
        self.key_scratch = key;
        self.splice_segment(j);
    }

    /// Extends node `j`'s series so that `series[k]` exists. Values are
    /// prefix-stable: a deeper recomputation reproduces every shallower
    /// entry bit for bit, so laziness never changes results.
    fn ensure_k(&mut self, j: usize, k: usize) {
        let have = self.seg[j + 1] - self.seg[j];
        if k < have {
            return;
        }
        // Geometric growth bounds the number of recomputations per
        // configuration at O(log max_k).
        let target = (have.max(1) * 2).max(k).min(self.max_k as usize);
        let probs = self.states[j].probs.clone();
        let state = NodeState::compute(probs, target, self.rounding);
        self.series_computed += 1;
        self.memo.insert(key_of(&state.probs), Arc::clone(&state));
        self.states[j] = state;
        self.splice_segment(j);
    }

    /// Formula (5) for the budget vector `ks`: the union failure
    /// probability per iteration, **before** the pessimistic rounding-up.
    ///
    /// Bit-identical to [`union_failure`](crate::union_failure) over the
    /// per-node `Pr(f > k_j)` values: the cached log terms are the same
    /// `ln_1p` results, summed in the same node order.
    ///
    /// # Panics
    ///
    /// Panics if `ks` has the wrong length or any `ks[j] > max_k`.
    pub fn union_failure(&mut self, ks: &[u32]) -> f64 {
        assert_eq!(ks.len(), self.states.len(), "one budget per node");
        for (j, &k) in ks.iter().enumerate() {
            self.ensure_k(j, k as usize);
        }
        self.union_of_cached(ks)
    }

    /// The log-domain union sum over already-ensured budgets: one
    /// contiguous-buffer gather, in node order (the same left-to-right sum
    /// as [`union_failure`](crate::union_failure)).
    fn log_sum_of_cached(&self, ks: &[u32]) -> f64 {
        ks.iter()
            .enumerate()
            .map(|(j, &k)| self.log_ok_buf[self.seg[j] + k as usize])
            .sum()
    }

    /// The union over already-ensured budgets (no extension).
    fn union_of_cached(&self, ks: &[u32]) -> f64 {
        (-f64::exp_m1(self.log_sum_of_cached(ks))).clamp(0.0, 1.0)
    }

    /// The greedy budget search of Section 6.3 off the cached series —
    /// step-identical to [`ReExecutionOpt::optimize`] (the executable
    /// specification), which rebuilds every series up to `max_k` per call.
    ///
    /// [`ReExecutionOpt::optimize`]: crate::ReExecutionOpt::optimize
    pub fn optimize(&mut self, goal: ReliabilityGoal, period: TimeUs) -> Option<Vec<u32>> {
        let mut ks = Vec::new();
        if self.optimize_into(goal, period, &mut ks) {
            Some(ks)
        } else {
            None
        }
    }

    /// [`optimize`](SystemSfp::optimize) writing the budget vector into a
    /// caller-provided buffer — the allocation-free entry point of the
    /// candidate arena. Returns `true` iff the goal is reachable (in which
    /// case `ks` holds the budgets; its prior contents are replaced).
    pub fn optimize_into(
        &mut self,
        goal: ReliabilityGoal,
        period: TimeUs,
        ks: &mut Vec<u32>,
    ) -> bool {
        // Hoist the period-constant factors of the goal test out of the
        // climb (bit-identical to per-iteration `is_met` calls).
        let n_iterations = goal.iterations(period);
        let ln_rho = goal.ln_rho();
        // The goal-decision memo shortcuts the remaining per-step
        // `exp_m1`/rounding/`ln_1p` chain. Bit-exactness argument: after
        // hoisting, the met/not-met decision is
        //
        //   is_met_hoisted(n, ln ρ, rounding.up(−exp_m1(S)).clamp(0, 1))
        //
        // — a *pure function* of the exact bit patterns of the log-domain
        // union sum `S`, the hoisted constants `(n, ln ρ)`, and the fixed
        // rounding mode. Keying the memo on `S.to_bits()` and invalidating
        // it whenever `(n.to_bits(), ln ρ.to_bits())` changes therefore
        // replays exactly the decision the chain would have produced; no
        // float is ever substituted, so the climb's trajectory (and the
        // returned `ks`) cannot differ from the unmemoized walk.
        let gk = (n_iterations.to_bits(), ln_rho.to_bits());
        if self.goal_key != gk {
            self.goal_memo.clear();
            self.goal_key = gk;
        }
        let node_count = self.states.len();
        ks.clear();
        ks.resize(node_count, 0);
        // Per-node current gain `series[k] − series[k+1]` (`None` = the
        // budget cap is reached). Only the incremented node's gain moves
        // between iterations, and a cached gain is a pure reload of the
        // identical series values (series are prefix-stable), so caching
        // them reproduces the per-iteration rescans of the from-scratch
        // search bit for bit — same selection rule, same tie-break
        // (strictly-greater gain wins, first node kept on ties).
        // Gains are filled lazily: a goal met at `ks = 0` never extends
        // a series, exactly like the reference climb.
        let mut gains = std::mem::take(&mut self.gain_scratch);
        gains.clear();
        loop {
            let log_sum = self.log_sum_of_cached(ks);
            let met = match self.goal_memo.get(&log_sum.to_bits()) {
                Some(&m) => m,
                None => {
                    let union = self.rounding.up((-f64::exp_m1(log_sum)).clamp(0.0, 1.0));
                    let m = ReliabilityGoal::is_met_hoisted(n_iterations, ln_rho, union);
                    if self.goal_memo.len() >= GOAL_MEMO_CAP {
                        self.goal_memo.clear();
                    }
                    self.goal_memo.insert(log_sum.to_bits(), m);
                    m
                }
            };
            if met {
                self.gain_scratch = gains;
                return true;
            }
            if gains.is_empty() {
                for j in 0..node_count {
                    let g = self.gain(j, 0);
                    gains.push(g);
                }
            }
            let mut best: Option<(usize, f64)> = None;
            for (j, &gain) in gains.iter().enumerate() {
                if let Some(gain) = gain {
                    if gain > 0.0 && best.map_or(true, |(_, g)| gain > g) {
                        best = Some((j, gain));
                    }
                }
            }
            let Some((j, _)) = best else {
                self.gain_scratch = gains;
                return false;
            };
            ks[j] += 1;
            gains[j] = self.gain(j, ks[j] as usize);
        }
    }

    /// The climb's per-node gain at budget `k`, extending the series as
    /// needed; `None` once the `max_k` cap is reached.
    fn gain(&mut self, j: usize, k: usize) -> Option<f64> {
        if k + 1 > self.max_k as usize {
            return None;
        }
        self.ensure_k(j, k + 1);
        let start = self.seg[j];
        Some(self.series_buf[start + k] - self.series_buf[start + k + 1])
    }

    /// The full [`SfpResult`] for the budget vector `ks`, off the cache —
    /// bit-identical to [`analyze`](crate::analyze) on the same system.
    ///
    /// # Panics
    ///
    /// Panics if `ks` has the wrong length or any `ks[j] > max_k`.
    pub fn analyze(&mut self, ks: &[u32], goal: ReliabilityGoal, period: TimeUs) -> SfpResult {
        assert_eq!(ks.len(), self.states.len(), "one budget per node");
        for (j, &k) in ks.iter().enumerate() {
            self.ensure_k(j, k as usize);
        }
        let node_failure: Vec<f64> = ks
            .iter()
            .enumerate()
            .map(|(j, &k)| self.series_buf[self.seg[j] + k as usize])
            .collect();
        let p_fail_per_iteration = self.rounding.up(self.union_of_cached(ks));
        SfpResult {
            node_failure,
            p_fail_per_iteration,
            reliability_over_unit: reliability_over_unit(p_fail_per_iteration, goal, period),
            meets_goal: goal.is_met(p_fail_per_iteration, period),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::union_failure;
    use crate::node_failure::NodeSfp;
    use crate::reexec::ReExecutionOpt;

    fn p(v: f64) -> Prob {
        Prob::new(v).unwrap()
    }

    fn goal() -> ReliabilityGoal {
        ReliabilityGoal::per_hour(1e-5).unwrap()
    }

    #[test]
    fn matches_reexecution_opt_from_scratch() {
        let node_probs = vec![vec![p(1.2e-5), p(1.3e-5)], vec![p(1.2e-5), p(1.3e-5)]];
        let mut sys = SystemSfp::from_node_probs(&node_probs, 30, Rounding::Pessimistic);
        let incr = sys.optimize(goal(), TimeUs::from_ms(360));
        let scratch = ReExecutionOpt::default().optimize(&node_probs, goal(), TimeUs::from_ms(360));
        assert_eq!(incr, scratch);
        assert_eq!(incr, Some(vec![1, 1]));
    }

    #[test]
    fn lazy_series_prefix_is_bit_identical_to_nodesfp() {
        let probs = vec![p(1e-3), p(2e-3), p(3e-3)];
        let reference = NodeSfp::new(probs.clone(), Rounding::Pessimistic).pr_more_than_series(8);
        let mut sys = SystemSfp::from_node_probs(&[probs], 8, Rounding::Pessimistic);
        // Query in an arbitrary order; every answer must equal the
        // eagerly-built reference series.
        for k in [0u32, 3, 1, 8, 5] {
            assert_eq!(sys.pr_more_than(0, k), reference[k as usize], "k={k}");
        }
        assert_eq!(sys.series(0), &reference[..sys.series(0).len()]);
    }

    #[test]
    fn delta_update_equals_rebuild() {
        let mut sys = SystemSfp::from_node_probs(
            &[vec![p(1e-4), p(2e-4)], vec![p(5e-3)]],
            10,
            Rounding::Pessimistic,
        );
        sys.set_node_probs(1, &[p(1.2e-5), p(1.3e-5)]);
        let mut rebuilt = SystemSfp::from_node_probs(
            &[vec![p(1e-4), p(2e-4)], vec![p(1.2e-5), p(1.3e-5)]],
            10,
            Rounding::Pessimistic,
        );
        for j in 0..2 {
            for k in 0..=10u32 {
                assert_eq!(
                    sys.pr_more_than(j, k),
                    rebuilt.pr_more_than(j, k),
                    "node {j} k {k}"
                );
            }
        }
        assert_eq!(
            sys.optimize(goal(), TimeUs::from_ms(360)),
            rebuilt.optimize(goal(), TimeUs::from_ms(360))
        );
    }

    #[test]
    fn union_matches_global_function_bitwise() {
        let mut sys = SystemSfp::from_node_probs(
            &[vec![p(1e-3)], vec![p(2e-4), p(3e-4)], vec![]],
            8,
            Rounding::Pessimistic,
        );
        for ks in [[0, 0, 0], [1, 0, 2], [3, 8, 0]] {
            let failures: Vec<f64> = (0..3).map(|j| sys.pr_more_than(j, ks[j])).collect();
            assert_eq!(sys.union_failure(&ks), union_failure(&failures), "{ks:?}");
        }
    }

    #[test]
    fn analyze_matches_appendix_numbers() {
        let mut sys = SystemSfp::from_node_probs(
            &[vec![p(1.2e-5), p(1.3e-5)], vec![p(1.2e-5), p(1.3e-5)]],
            30,
            Rounding::Pessimistic,
        );
        let r = sys.analyze(&[1, 1], goal(), TimeUs::from_ms(360));
        assert!(r.meets_goal);
        assert!((r.reliability_over_unit - 0.99999040004).abs() < 1e-9);
        assert!((r.node_failure[0] - 4.8e-10).abs() < 1e-16);
    }

    #[test]
    fn memo_resolves_revisited_configurations() {
        let mut sys = SystemSfp::new(2, 10, Rounding::Pessimistic);
        sys.set_node_probs(0, &[p(1e-3), p(2e-3)]);
        sys.set_node_probs(1, &[p(4e-3)]);
        let computed = sys.series_computed();
        // Swap the two configurations: both are memo hits.
        sys.set_node_probs(0, &[p(4e-3)]);
        sys.set_node_probs(1, &[p(1e-3), p(2e-3)]);
        assert_eq!(sys.series_computed(), computed);
        assert_eq!(sys.memo_hits(), 2);
    }

    #[test]
    fn soa_segments_stay_consistent_across_depth_changes() {
        // Deepen node 0 (splice grows its segment), then node 2, then
        // shrink node 0 back to a depth-0 configuration: every segment
        // must still read back its own node's reference series.
        let configs = [
            vec![p(1e-3), p(2e-3)],
            vec![p(5e-4)],
            vec![p(3e-3), p(4e-3), p(5e-3)],
        ];
        let mut sys = SystemSfp::from_node_probs(&configs, 12, Rounding::Pessimistic);
        sys.pr_more_than(0, 7); // deepen node 0
        sys.pr_more_than(2, 3); // deepen node 2
        sys.set_node_probs(0, &[p(9e-4)]); // fresh depth-0 config
        let refs: Vec<Vec<f64>> = [vec![p(9e-4)], configs[1].clone(), configs[2].clone()]
            .iter()
            .map(|c| NodeSfp::new(c.clone(), Rounding::Pessimistic).pr_more_than_series(12))
            .collect();
        for (j, reference) in refs.iter().enumerate() {
            let have = sys.series(j).len();
            assert_eq!(sys.series(j), &reference[..have], "node {j}");
            for k in 0..=12u32 {
                assert_eq!(
                    sys.pr_more_than(j, k),
                    reference[k as usize],
                    "node {j} k {k}"
                );
            }
        }
    }

    #[test]
    fn optimize_into_reuses_the_buffer_and_matches_optimize() {
        let node_probs = vec![vec![p(1.2e-5), p(1.3e-5)], vec![p(1.2e-5), p(1.3e-5)]];
        let mut sys = SystemSfp::from_node_probs(&node_probs, 30, Rounding::Pessimistic);
        let mut ks = vec![7u32; 8]; // stale contents must be replaced
        assert!(sys.optimize_into(goal(), TimeUs::from_ms(360), &mut ks));
        assert_eq!(ks, vec![1, 1]);
        assert_eq!(sys.optimize(goal(), TimeUs::from_ms(360)), Some(ks));
    }

    #[test]
    fn goal_memo_invalidates_on_goal_or_period_change() {
        let node_probs = vec![vec![p(1.2e-5), p(1.3e-5)], vec![p(1.2e-5), p(1.3e-5)]];
        let mut sys = SystemSfp::from_node_probs(&node_probs, 30, Rounding::Pessimistic);
        let strict = ReliabilityGoal::per_hour(1e-9).unwrap();
        // Alternate between goals and periods; each call must equal a
        // fresh analyzer's answer (no stale decision can leak through).
        for (g, ms) in [
            (goal(), 360),
            (strict, 360),
            (goal(), 360),
            (goal(), 100),
            (strict, 100),
        ] {
            let got = sys.optimize(g, TimeUs::from_ms(ms));
            let fresh = SystemSfp::from_node_probs(&node_probs, 30, Rounding::Pessimistic)
                .optimize(g, TimeUs::from_ms(ms));
            assert_eq!(got, fresh, "goal {g:?} period {ms}ms");
        }
    }

    #[test]
    fn resizing_keeps_and_empties_nodes() {
        let mut sys =
            SystemSfp::from_node_probs(&[vec![p(1e-3)], vec![p(2e-3)]], 5, Rounding::Exact);
        let kept = sys.pr_more_than(0, 3);
        sys.set_node_count(3);
        assert_eq!(sys.node_count(), 3);
        assert_eq!(sys.pr_more_than(0, 3), kept);
        assert_eq!(sys.pr_more_than(2, 0), 0.0, "fresh node never fails");
        sys.set_node_count(1);
        assert_eq!(sys.node_count(), 1);
        assert_eq!(sys.pr_more_than(0, 3), kept);
    }

    #[test]
    fn empty_system_meets_any_goal_with_zero_budgets() {
        let mut sys = SystemSfp::new(2, 4, Rounding::Pessimistic);
        assert_eq!(sys.optimize(goal(), TimeUs::from_ms(100)), Some(vec![0, 0]));
    }

    #[test]
    fn unreachable_goal_is_reported() {
        let mut sys = SystemSfp::from_node_probs(&[vec![p(1.0)]], 5, Rounding::Pessimistic);
        assert_eq!(sys.optimize(goal(), TimeUs::from_ms(360)), None);
    }
}
